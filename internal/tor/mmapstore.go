package tor

import (
	"encoding/binary"
	"fmt"
	"time"
)

// MmapDescriptorStore is the spill-to-disk backend for million-entry
// descriptor populations: descriptors live encoded in an append-only
// log of mmap'd chunks outside the Go heap, and only a fixed-size
// digest→offset index (the same open-addressed ringTable the sharded
// backend uses) stays on the heap. The GC therefore scans a few flat
// slices regardless of population, and a 10^6-descriptor directory
// costs the heap ~24 bytes per entry instead of a pointer-heavy
// Descriptor graph.
//
// Log format (offsets are global across the chunk list):
//
//	record  := kind(1) id(20) len(4, LE) payload(len)
//	kind    := recPut | recNil | recDel | recPad
//	payload := encoded descriptor (recPut), empty (recNil, recDel)
//
// Put appends a recPut (or recNil for a nil descriptor — the flat
// backend accepts those, so the differential battery does too) and
// repoints the index at the new offset; the overwritten record stays
// behind as a tombstone counted in deadBytes. Delete appends a recDel
// marker — the log is a complete operation journal, so an index can be
// rebuilt by replay (see rebuildIndex) — and drops the index entry.
// Records never span chunks; the unusable tail of a chunk is stamped
// recPad and counted dead. When the dead volume exceeds the live
// volume (and compactMin), compact rewrites live records into a fresh
// chunk list in log order and unmaps the old one.
//
// Like the other backends it is not safe for concurrent use: each
// simulation task drives its network from one goroutine.
type MmapDescriptorStore struct {
	chunks []mmapChunk
	tail   uint64 // global append offset
	index  [descShards]ringTable[uint64]
	n      int

	liveBytes uint64 // bytes of records the index still points at
	deadBytes uint64 // tombstoned records, delete markers, chunk padding

	scratch []byte // encode buffer, reused across Puts
	stats   MmapStoreStats
}

// MmapStoreStats counts store activity for tests and benchmarks.
type MmapStoreStats struct {
	// Compactions is how many times the log was rewritten.
	Compactions int
	// Chunks is the current chunk count; LogBytes the current tail
	// offset (live + dead + padding).
	Chunks   int
	LogBytes uint64
	// LiveBytes and DeadBytes split LogBytes by whether the index still
	// points at the record.
	LiveBytes, DeadBytes uint64
}

// Record kinds. recPad marks the unusable tail of a chunk (records
// never span chunks); its "record" is just the single kind byte
// repeated implicitly to the chunk boundary.
const (
	recPad = iota
	recPut
	recNil
	recDel
)

const (
	// mmapChunkShift sizes chunks at 1 MiB: small enough that a
	// network's many HSDir stores cost little, large enough that a
	// 10^6-entry log is a few hundred chunks. Anonymous mappings are
	// lazily committed, so an idle store's resident cost is one page.
	mmapChunkShift = 20
	mmapChunkSize  = 1 << mmapChunkShift
	mmapChunkMask  = mmapChunkSize - 1

	recHeaderSize = 1 + 20 + 4

	// compactMin is the dead volume below which compaction is never
	// triggered, so small stores do not thrash.
	compactMin = 1 << 20
)

// NewMmapDescriptorStore returns an empty mmap-backed store. Chunks are
// anonymous private mappings: off-heap, swappable, reclaimed on Close
// (or process exit) — there is no backing file to manage, which keeps
// a network's per-HSDir stores free of file-descriptor cost.
func NewMmapDescriptorStore() *MmapDescriptorStore {
	return &MmapDescriptorStore{}
}

// Close unmaps every chunk. The store is empty afterwards and remains
// usable (a subsequent Put maps fresh chunks). Calling Close on
// long-gone stores is optional — unreferenced mappings are reclaimed
// when the process exits, and relays live for the whole run — but
// sweeps that churn many networks per process should close stores (via
// Network teardown) to keep mapped memory bounded.
func (s *MmapDescriptorStore) Close() {
	for _, c := range s.chunks {
		c.release()
	}
	s.chunks = nil
	s.tail = 0
	s.n = 0
	s.liveBytes, s.deadBytes = 0, 0
	for i := range s.index {
		s.index[i] = ringTable[uint64]{}
	}
}

// Len reports the number of stored descriptors.
func (s *MmapDescriptorStore) Len() int { return s.n }

// Stats returns a snapshot of the log geometry.
func (s *MmapDescriptorStore) Stats() MmapStoreStats {
	st := s.stats
	st.Chunks = len(s.chunks)
	st.LogBytes = s.tail
	st.LiveBytes, st.DeadBytes = s.liveBytes, s.deadBytes
	return st
}

// Put stores (or replaces) the descriptor at id. The descriptor is
// encoded at call time: later mutations of d are not reflected, which
// matches how directories use the interface (they ingest immutable
// clones and never touch them again).
func (s *MmapDescriptorStore) Put(id DescriptorID, d *Descriptor) {
	kind := byte(recPut)
	payload := s.scratch[:0]
	if d == nil {
		kind = recNil
	} else {
		payload = encodeDescriptor(payload, d)
		s.scratch = payload[:0]
	}
	off := s.append(kind, id, payload)
	t := &s.index[id[8]&(descShards-1)]
	if old, ok := t.get(id); ok {
		s.retire(old)
	} else {
		s.n++
	}
	t.put(id, off)
	s.liveBytes += uint64(recHeaderSize + len(payload))
	s.maybeCompact()
}

// Get returns the descriptor stored at id, decoded fresh from the log.
// Successive Gets of one id return distinct (equal) *Descriptor values;
// callers of the DescriptorStore interface treat results as immutable
// either way (directories clone before serving).
func (s *MmapDescriptorStore) Get(id DescriptorID) (*Descriptor, bool) {
	off, ok := s.index[id[8]&(descShards-1)].get(id)
	if !ok {
		return nil, false
	}
	kind, _, payload := s.record(off)
	if kind == recNil {
		return nil, true
	}
	d, err := decodeDescriptor(payload)
	if err != nil {
		// Unreachable unless the log was corrupted through the mmap by
		// an outside writer; fail loudly rather than serve garbage.
		panic(fmt.Sprintf("tor: mmap store: corrupt record at offset %d: %v", off, err))
	}
	return d, true
}

// Delete removes the descriptor at id (absent ids are a no-op). The
// log gains a delete marker so replaying it reproduces the index.
func (s *MmapDescriptorStore) Delete(id DescriptorID) {
	t := &s.index[id[8]&(descShards-1)]
	off, ok := t.get(id)
	if !ok {
		return
	}
	t.remove(id)
	s.n--
	s.retire(off)
	s.append(recDel, id, nil)
	s.deadBytes += recHeaderSize // the marker itself is never live
	s.maybeCompact()
}

// retire moves the record at off from the live to the dead account.
func (s *MmapDescriptorStore) retire(off uint64) {
	_, n, _ := s.record(off)
	s.liveBytes -= uint64(recHeaderSize + n)
	s.deadBytes += uint64(recHeaderSize + n)
}

// append writes one record and returns its global offset.
func (s *MmapDescriptorStore) append(kind byte, id DescriptorID, payload []byte) uint64 {
	need := recHeaderSize + len(payload)
	if need > mmapChunkSize {
		panic(fmt.Sprintf("tor: mmap store: record of %d bytes exceeds chunk size", need))
	}
	if room := mmapChunkSize - int(s.tail&mmapChunkMask); room < need && len(s.chunks) > 0 {
		// Stamp the unusable tail as padding and advance to the next
		// chunk boundary.
		buf := s.chunks[len(s.chunks)-1].bytes()
		pos := int(s.tail & mmapChunkMask)
		if pos < mmapChunkSize {
			buf[pos] = recPad
		}
		s.deadBytes += uint64(room)
		s.tail = (s.tail + mmapChunkSize) &^ uint64(mmapChunkMask)
	}
	for int(s.tail>>mmapChunkShift) >= len(s.chunks) {
		s.chunks = append(s.chunks, newMmapChunk(mmapChunkSize))
	}
	buf := s.chunks[s.tail>>mmapChunkShift].bytes()
	pos := int(s.tail & mmapChunkMask)
	off := s.tail
	buf[pos] = kind
	copy(buf[pos+1:], id[:])
	binary.LittleEndian.PutUint32(buf[pos+21:], uint32(len(payload)))
	copy(buf[pos+recHeaderSize:], payload)
	s.tail += uint64(need)
	return off
}

// record reads the record at off, returning its kind, payload length,
// and payload view into the mapped chunk.
func (s *MmapDescriptorStore) record(off uint64) (kind byte, n int, payload []byte) {
	buf := s.chunks[off>>mmapChunkShift].bytes()
	pos := int(off & mmapChunkMask)
	kind = buf[pos]
	n = int(binary.LittleEndian.Uint32(buf[pos+21:]))
	return kind, n, buf[pos+recHeaderSize : pos+recHeaderSize+n]
}

// recordID reads the 20-byte key of the record at off.
func (s *MmapDescriptorStore) recordID(off uint64) DescriptorID {
	buf := s.chunks[off>>mmapChunkShift].bytes()
	pos := int(off & mmapChunkMask)
	var id DescriptorID
	copy(id[:], buf[pos+1:])
	return id
}

// maybeCompact rewrites the log when tombstones dominate it.
func (s *MmapDescriptorStore) maybeCompact() {
	if s.deadBytes > compactMin && s.deadBytes > s.liveBytes {
		s.compact()
	}
}

// compact walks the old log in offset order, re-appending every record
// the index still points at into a fresh chunk list, then unmaps the
// old chunks. Offset order keeps the rewrite deterministic and
// preserves temporal locality; delete markers and tombstones vanish.
func (s *MmapDescriptorStore) compact() {
	oldChunks := s.chunks
	oldTail := s.tail
	s.chunks = nil
	s.tail = 0
	s.liveBytes, s.deadBytes = 0, 0
	for off := uint64(0); off < oldTail; {
		pos := int(off & mmapChunkMask)
		buf := oldChunks[off>>mmapChunkShift].bytes()
		if buf[pos] == recPad {
			off = (off + mmapChunkSize) &^ uint64(mmapChunkMask)
			continue
		}
		kind := buf[pos]
		n := int(binary.LittleEndian.Uint32(buf[pos+21:]))
		if kind == recPut || kind == recNil {
			id := DescriptorID{}
			copy(id[:], buf[pos+1:])
			t := &s.index[id[8]&(descShards-1)]
			if cur, ok := t.get(id); ok && cur == off {
				newOff := s.append(kind, id, buf[pos+recHeaderSize:pos+recHeaderSize+n])
				t.put(id, newOff)
				s.liveBytes += uint64(recHeaderSize + n)
			}
		}
		off += uint64(recHeaderSize + n)
	}
	for _, c := range oldChunks {
		c.release()
	}
	s.stats.Compactions++
}

// rebuildIndex reconstructs the digest→offset index purely from the
// log, proving the log is a self-contained operation journal. Used by
// tests; a crash-recovery caller would do the same.
func (s *MmapDescriptorStore) rebuildIndex() {
	for i := range s.index {
		s.index[i] = ringTable[uint64]{}
	}
	s.n = 0
	s.liveBytes, s.deadBytes = 0, 0
	for off := uint64(0); off < s.tail; {
		pos := int(off & mmapChunkMask)
		buf := s.chunks[off>>mmapChunkShift].bytes()
		if buf[pos] == recPad {
			s.deadBytes += mmapChunkSize - uint64(pos)
			off = (off + mmapChunkSize) &^ uint64(mmapChunkMask)
			continue
		}
		kind := buf[pos]
		n := int(binary.LittleEndian.Uint32(buf[pos+21:]))
		var id DescriptorID
		copy(id[:], buf[pos+1:])
		t := &s.index[id[8]&(descShards-1)]
		switch kind {
		case recPut, recNil:
			if old, ok := t.get(id); ok {
				on := 0
				_, on, _ = s.record(old)
				s.liveBytes -= uint64(recHeaderSize + on)
				s.deadBytes += uint64(recHeaderSize + on)
			} else {
				s.n++
			}
			t.put(id, off)
			s.liveBytes += uint64(recHeaderSize + n)
		case recDel:
			if old, ok := t.get(id); ok {
				t.remove(id)
				s.n--
				on := 0
				_, on, _ = s.record(old)
				s.liveBytes -= uint64(recHeaderSize + on)
				s.deadBytes += uint64(recHeaderSize + on)
			}
			s.deadBytes += recHeaderSize
		}
		off += uint64(recHeaderSize + n)
	}
}

// Descriptor wire codec. The encoding is private to the store: it only
// ever round-trips within one process, so it needs determinism and
// completeness (every field of Descriptor that participates in equal),
// not cross-version stability. The verified memo-mark deliberately
// does not travel — a decoded copy must re-earn verification exactly
// like a clone() does.

func encodeDescriptor(buf []byte, d *Descriptor) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(d.Pub)))
	buf = append(buf, tmp[:2]...)
	buf = append(buf, d.Pub...)
	binary.LittleEndian.PutUint64(tmp[:], d.TimePeriod)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(int64(d.Replica)))
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(d.PublishedAt.Unix()))
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(d.PublishedAt.Nanosecond()))
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(d.IntroPoints)))
	buf = append(buf, tmp[:2]...)
	for _, ip := range d.IntroPoints {
		buf = append(buf, ip[:]...)
	}
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(d.Sig)))
	buf = append(buf, tmp[:2]...)
	buf = append(buf, d.Sig...)
	return buf
}

func decodeDescriptor(b []byte) (*Descriptor, error) {
	d := &Descriptor{}
	take := func(n int) ([]byte, error) {
		if len(b) < n {
			return nil, fmt.Errorf("short record")
		}
		out := b[:n]
		b = b[n:]
		return out, nil
	}
	pl, err := take(2)
	if err != nil {
		return nil, err
	}
	pub, err := take(int(binary.LittleEndian.Uint16(pl)))
	if err != nil {
		return nil, err
	}
	if len(pub) > 0 {
		d.Pub = append(d.Pub, pub...)
	}
	f, err := take(8 + 8 + 8 + 4)
	if err != nil {
		return nil, err
	}
	d.TimePeriod = binary.LittleEndian.Uint64(f)
	d.Replica = int(int64(binary.LittleEndian.Uint64(f[8:])))
	sec := int64(binary.LittleEndian.Uint64(f[16:]))
	nsec := binary.LittleEndian.Uint32(f[24:])
	d.PublishedAt = time.Unix(sec, int64(nsec)).UTC()
	nl, err := take(2)
	if err != nil {
		return nil, err
	}
	nIntro := int(binary.LittleEndian.Uint16(nl))
	if nIntro > 0 {
		ips, err := take(20 * nIntro)
		if err != nil {
			return nil, err
		}
		d.IntroPoints = make([]Fingerprint, nIntro)
		for i := range d.IntroPoints {
			copy(d.IntroPoints[i][:], ips[20*i:])
		}
	}
	sl, err := take(2)
	if err != nil {
		return nil, err
	}
	sig, err := take(int(binary.LittleEndian.Uint16(sl)))
	if err != nil {
		return nil, err
	}
	if len(sig) > 0 {
		d.Sig = append(d.Sig, sig...)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%d trailing bytes", len(b))
	}
	return d, nil
}

// NewDescriptorStoreByName maps a backend name to its constructor:
// "flat" (seed reference), "sharded" (default), "mmap" (off-heap
// append-log). The empty name selects the default. Unknown names error
// so a sweep spec typo cannot silently fall back.
func NewDescriptorStoreByName(name string) (func() DescriptorStore, error) {
	switch name {
	case "", "sharded":
		return func() DescriptorStore { return NewShardedDescriptorStore() }, nil
	case "flat":
		return func() DescriptorStore { return NewFlatDescriptorStore() }, nil
	case "mmap":
		return func() DescriptorStore { return NewMmapDescriptorStore() }, nil
	default:
		return nil, fmt.Errorf("tor: unknown descriptor store backend %q (want flat, sharded, or mmap)", name)
	}
}

// StoreBackendNames lists the selectable backends in a stable order,
// for sweep-axis validation and -store flag help.
func StoreBackendNames() []string { return []string{"flat", "sharded", "mmap"} }
