package tor

// Storage backends for the directory layer. The seed implementation
// kept one flat map[DescriptorID]*Descriptor per HSDir and one flat
// map[Fingerprint]*Relay per network. Both key types are outputs of
// cryptographic hashes, which a general-purpose Go map re-hashes on
// every access and rehashes wholesale whenever it grows. The sharded
// backend below exploits the keys' own uniformity: the leading eight
// key bytes are the hash, entries live in open-addressed, linearly
// probed shard tables (one cache line per probe, no hash computation),
// and growth rehashes one sixteenth of the population at a time.

// DescriptorStore is the storage behind an HSDir relay's descriptor
// cache. Implementations need not be safe for concurrent use: each
// simulation task drives its network from one goroutine.
type DescriptorStore interface {
	// Put stores (or replaces) the descriptor at id.
	Put(id DescriptorID, d *Descriptor)
	// Get returns the descriptor stored at id, if any.
	Get(id DescriptorID) (*Descriptor, bool)
	// Delete removes the descriptor at id (absent ids are a no-op).
	Delete(id DescriptorID)
	// Len reports the number of stored descriptors.
	Len() int
}

// FlatDescriptorStore is the seed backend: one Go map keyed by the full
// 20-byte descriptor id. Kept as the executable reference the sharded
// backend is differentially tested against, and as the conservative
// fallback (Config.NewDescriptorStore).
type FlatDescriptorStore struct {
	m map[DescriptorID]*Descriptor
}

// NewFlatDescriptorStore returns an empty flat backend.
func NewFlatDescriptorStore() *FlatDescriptorStore {
	return &FlatDescriptorStore{m: make(map[DescriptorID]*Descriptor)}
}

// Put stores the descriptor at id.
func (s *FlatDescriptorStore) Put(id DescriptorID, d *Descriptor) { s.m[id] = d }

// Get returns the descriptor stored at id.
func (s *FlatDescriptorStore) Get(id DescriptorID) (*Descriptor, bool) {
	d, ok := s.m[id]
	return d, ok
}

// Delete removes the descriptor at id.
func (s *FlatDescriptorStore) Delete(id DescriptorID) { delete(s.m, id) }

// Len reports the number of stored descriptors.
func (s *FlatDescriptorStore) Len() int { return len(s.m) }

// ringTable is an open-addressed hash table over 20-byte ring keys
// (descriptor ids, relay fingerprints). The key's leading eight bytes
// serve directly as the hash — the keys are SHA-type digests, so they
// are their own perfect hash; adversarially clustered keys (an attacker
// brute-forcing fingerprints next to a descriptor id, Section VI-A)
// only lengthen a local probe run, never break correctness. Slots carry
// an occupancy stamp (empty / live / tombstone); deletions stamp a
// tombstone and churn recycles them in place, so steady-state mutation
// allocates nothing.
type ringTable[V any] struct {
	slots []ringSlot[V] // power-of-two length
	live  int
	dead  int // tombstones
}

type ringSlot[V any] struct {
	state uint8 // slotEmpty, slotLive, slotDead
	key   [20]byte
	val   V
}

const (
	slotEmpty = iota
	slotLive
	slotDead
)

func ringHash(key [20]byte) uint64 {
	var h uint64
	for i := 0; i < 8; i++ {
		h = h<<8 | uint64(key[i])
	}
	return h
}

// get returns the value stored at key.
func (t *ringTable[V]) get(key [20]byte) (V, bool) {
	var zero V
	if len(t.slots) == 0 {
		return zero, false
	}
	mask := uint64(len(t.slots) - 1)
	for i := ringHash(key) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		switch s.state {
		case slotEmpty:
			return zero, false
		case slotLive:
			if s.key == key {
				return s.val, true
			}
		}
	}
}

// put stores (or replaces) the value at key.
func (t *ringTable[V]) put(key [20]byte, val V) {
	if t.live+t.dead >= len(t.slots)-len(t.slots)/4 {
		t.rebuild()
	}
	mask := uint64(len(t.slots) - 1)
	firstDead := -1
	for i := ringHash(key) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		switch s.state {
		case slotEmpty:
			if firstDead >= 0 {
				s = &t.slots[firstDead]
				t.dead--
			}
			s.state = slotLive
			s.key = key
			s.val = val
			t.live++
			return
		case slotLive:
			if s.key == key {
				s.val = val
				return
			}
		case slotDead:
			if firstDead < 0 {
				firstDead = int(i)
			}
		}
	}
}

// remove deletes key, reporting whether it was present.
func (t *ringTable[V]) remove(key [20]byte) bool {
	if len(t.slots) == 0 {
		return false
	}
	mask := uint64(len(t.slots) - 1)
	for i := ringHash(key) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		switch s.state {
		case slotEmpty:
			return false
		case slotLive:
			if s.key == key {
				var zero V
				s.state = slotDead
				s.val = zero // release the pointee to GC
				t.live--
				t.dead++
				return true
			}
		}
	}
}

// rebuild grows the table (or compacts tombstones in place when the
// live population does not justify growth) and reinserts live slots.
func (t *ringTable[V]) rebuild() {
	size := 16
	for size < 3*t.live {
		size *= 2
	}
	old := t.slots
	t.slots = make([]ringSlot[V], size)
	t.live, t.dead = 0, 0
	mask := uint64(size - 1)
	for i := range old {
		s := &old[i]
		if s.state != slotLive {
			continue
		}
		for j := ringHash(s.key) & mask; ; j = (j + 1) & mask {
			if t.slots[j].state == slotEmpty {
				t.slots[j] = *s
				t.live++
				break
			}
		}
	}
}

// descShards/relayShards shard the backends: ring keys are uniform, so
// any byte selects a shard, and each growth step rehashes 1/16 of the
// population instead of all of it. Byte 8 avoids the bytes used as the
// probe hash.
const (
	descShards  = 16
	relayShards = 16
)

// ShardedDescriptorStore is the default backend: 16 open-addressed
// ringTable shards. See the package comment in this file for the design
// and store_test.go for the differential test against the flat backend.
type ShardedDescriptorStore struct {
	shards [descShards]ringTable[*Descriptor]
	n      int
}

// NewShardedDescriptorStore returns an empty sharded backend.
func NewShardedDescriptorStore() *ShardedDescriptorStore {
	return &ShardedDescriptorStore{}
}

// Put stores (or replaces) the descriptor at id.
func (s *ShardedDescriptorStore) Put(id DescriptorID, d *Descriptor) {
	t := &s.shards[id[8]&(descShards-1)]
	before := t.live
	t.put(id, d)
	s.n += t.live - before
}

// Get returns the descriptor stored at id.
func (s *ShardedDescriptorStore) Get(id DescriptorID) (*Descriptor, bool) {
	return s.shards[id[8]&(descShards-1)].get(id)
}

// Delete removes the descriptor at id.
func (s *ShardedDescriptorStore) Delete(id DescriptorID) {
	if s.shards[id[8]&(descShards-1)].remove(id) {
		s.n--
	}
}

// Len reports the number of stored descriptors.
func (s *ShardedDescriptorStore) Len() int { return s.n }

// relayTable maps fingerprints to live relays with the same sharded
// open-addressed layout as ShardedDescriptorStore.
type relayTable struct {
	shards [relayShards]ringTable[*Relay]
	n      int
}

func newRelayTable() *relayTable { return &relayTable{} }

// get returns the relay for fp, or nil.
func (t *relayTable) get(fp Fingerprint) *Relay {
	r, _ := t.shards[fp[8]&(relayShards-1)].get(fp)
	return r
}

// put inserts fp -> r; the caller has already rejected duplicates.
func (t *relayTable) put(fp Fingerprint, r *Relay) {
	sh := &t.shards[fp[8]&(relayShards-1)]
	before := sh.live
	sh.put(fp, r)
	t.n += sh.live - before
}

// remove deletes fp, reporting whether it was present.
func (t *relayTable) remove(fp Fingerprint) bool {
	if t.shards[fp[8]&(relayShards-1)].remove(fp) {
		t.n--
		return true
	}
	return false
}

// len reports the number of live relays.
func (t *relayTable) len() int { return t.n }
