package tor

import (
	"testing"
)

// TestRelayRoleAccounting verifies that the per-relay counters — the
// only view a network observer gets — attribute work to the right
// roles during a full rendezvous.
func TestRelayRoleAccounting(t *testing.T) {
	n := newTestNetwork(t, 98, 15)
	server := NewProxy(n)
	hs, err := server.Host(testIdentity(t, 60), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	circuitsBefore := n.Stats().CircuitsBuilt

	client := NewProxy(n)
	conn, err := client.Dial(hs.Onion())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A dial builds at least 3 circuits: rendezvous, client intro, and
	// the service's circuit to the RP.
	if built := n.Stats().CircuitsBuilt - circuitsBefore; built < 3 {
		t.Fatalf("dial built %d circuits, want >= 3", built)
	}

	var introForwards, rendJoins, served int
	for _, ri := range n.Consensus().Relays {
		st := n.Relay(ri.FP).Stats()
		introForwards += st.IntrosForwarded
		rendJoins += st.RendezvousJoins
		served += st.DescriptorsServed
	}
	if introForwards != 1 {
		t.Fatalf("intro forwards = %d, want 1", introForwards)
	}
	if rendJoins != 1 {
		t.Fatalf("rendezvous joins = %d, want 1", rendJoins)
	}
	if served < 1 {
		t.Fatal("no HSDir served the descriptor")
	}
	// Descriptor uploads: 2 replicas x up-to-3 HSDirs each.
	stored := 0
	for _, ri := range n.Consensus().Relays {
		stored += n.Relay(ri.FP).Stats().DescriptorsStored
	}
	if stored < NumReplicas {
		t.Fatalf("descriptors stored = %d, want >= %d", stored, NumReplicas)
	}
}
