package tor

import (
	"fmt"
	"testing"
	"time"

	"onionbots/internal/sim"
)

// TestShardedStoreMatchesFlat drives both DescriptorStore backends with
// an identical randomized put/get/delete/overwrite workload and requires
// identical observable behavior at every step.
func TestShardedStoreMatchesFlat(t *testing.T) {
	rng := sim.NewRNG(42)
	flat := NewFlatDescriptorStore()
	sharded := NewShardedDescriptorStore()

	// A small id pool forces overwrites and deletes of live entries; a
	// shared 8-byte prefix across part of the pool forces chain handling.
	ids := make([]DescriptorID, 64)
	for i := range ids {
		copy(ids[i][:], rng.Bytes(20))
		if i%4 == 0 {
			copy(ids[i][:8], []byte("collide!")) // same uint64 prefix
		}
	}
	descs := make([]*Descriptor, 8)
	for i := range descs {
		descs[i] = &Descriptor{Sig: rng.Bytes(4)}
	}

	for step := 0; step < 20000; step++ {
		id := ids[rng.Intn(len(ids))]
		switch rng.Intn(4) {
		case 0, 1:
			d := descs[rng.Intn(len(descs))]
			flat.Put(id, d)
			sharded.Put(id, d)
		case 2:
			flat.Delete(id)
			sharded.Delete(id)
		default:
			fd, fok := flat.Get(id)
			sd, sok := sharded.Get(id)
			if fok != sok || fd != sd {
				t.Fatalf("step %d: Get(%x) flat=(%v,%v) sharded=(%v,%v)", step, id[:4], fd, fok, sd, sok)
			}
		}
		if flat.Len() != sharded.Len() {
			t.Fatalf("step %d: Len flat=%d sharded=%d", step, flat.Len(), sharded.Len())
		}
	}
	// Full sweep at the end: every id must agree.
	for _, id := range ids {
		fd, fok := flat.Get(id)
		sd, sok := sharded.Get(id)
		if fok != sok || fd != sd {
			t.Fatalf("final Get(%x) flat=(%v,%v) sharded=(%v,%v)", id[:4], fd, fok, sd, sok)
		}
	}
}

// TestShardedStoreSteadyChurnZeroAlloc pins the freelist claim: churning
// descriptors at a steady population allocates nothing.
func TestShardedStoreSteadyChurnZeroAlloc(t *testing.T) {
	rng := sim.NewRNG(7)
	s := NewShardedDescriptorStore()
	ids := make([]DescriptorID, 256)
	for i := range ids {
		copy(ids[i][:], rng.Bytes(20))
	}
	d := &Descriptor{}
	for _, id := range ids {
		s.Put(id, d)
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		id := ids[i%len(ids)]
		s.Delete(id)
		s.Put(id, d)
		if _, ok := s.Get(id); !ok {
			t.Fatal("lost entry")
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady churn allocated %.1f objects/op, want 0", allocs)
	}
}

// TestFlatStoreBackendOption pins the Config escape hatch: a network
// configured with the flat backend behaves identically through the full
// host/dial path.
func TestFlatStoreBackendOption(t *testing.T) {
	sched := sim.NewScheduler()
	n := NewNetwork(sched, sim.NewRNG(3), Config{
		NewDescriptorStore: func() DescriptorStore { return NewFlatDescriptorStore() },
	})
	if err := n.Bootstrap(12); err != nil {
		t.Fatal(err)
	}
	var seed [32]byte
	seed[0] = 9
	hs, err := NewProxy(n).Host(IdentityFromSeed(seed), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := NewProxy(n).Dial(hs.Onion())
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
}

// TestRelayTableSwapRemove exercises relay insertion/removal ordering:
// consensuses published after arbitrary removals must list exactly the
// live relays, and lookups must stay exact.
func TestRelayTableSwapRemove(t *testing.T) {
	sched := sim.NewScheduler()
	n := NewNetwork(sched, sim.NewRNG(5), Config{})
	var fps []Fingerprint
	for i := 0; i < 30; i++ {
		r, err := n.AddRelay()
		if err != nil {
			t.Fatal(err)
		}
		fps = append(fps, r.Fingerprint())
	}
	sched.RunFor(26 * time.Hour)
	// Remove every third relay, including the first and last inserted.
	removed := map[Fingerprint]bool{}
	for i := 0; i < len(fps); i += 3 {
		n.RemoveRelay(fps[i])
		removed[fps[i]] = true
	}
	if n.NumRelays() != 20 {
		t.Fatalf("NumRelays = %d, want 20", n.NumRelays())
	}
	for _, fp := range fps {
		got := n.Relay(fp)
		if removed[fp] && got != nil {
			t.Fatalf("removed relay %s still resolves", fp)
		}
		if !removed[fp] && (got == nil || got.Fingerprint() != fp) {
			t.Fatalf("live relay %s resolves to %v", fp, got)
		}
	}
	c := n.PublishConsensus()
	if c.NumRelays() != 20 {
		t.Fatalf("consensus lists %d relays, want 20", c.NumRelays())
	}
	for _, ri := range c.Relays {
		if removed[ri.FP] {
			t.Fatalf("consensus lists removed relay %s", ri.FP)
		}
		if !c.IsHSDir(ri.FP) {
			t.Fatalf("mature relay %s lost HSDir flag", ri.FP)
		}
	}
	for fp := range removed {
		if c.IsHSDir(fp) {
			t.Fatalf("removed relay %s has HSDir flag", fp)
		}
	}
}

// BenchmarkDescriptorStoreLookup compares backend lookup cost at HSDir
// populations matching a large botnet (every bot publishes 2 replicas ×
// 3 directories).
func BenchmarkDescriptorStoreLookup(b *testing.B) {
	for _, size := range []int{1000, 100000} {
		rng := sim.NewRNG(11)
		ids := make([]DescriptorID, size)
		d := &Descriptor{}
		for i := range ids {
			copy(ids[i][:], rng.Bytes(20))
		}
		for _, backend := range []struct {
			name string
			s    DescriptorStore
		}{
			{"flat", NewFlatDescriptorStore()},
			{"sharded", NewShardedDescriptorStore()},
			{"mmap", NewMmapDescriptorStore()},
		} {
			for _, id := range ids {
				backend.s.Put(id, d)
			}
			b.Run(fmt.Sprintf("%s/n=%d", backend.name, size), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, ok := backend.s.Get(ids[i%size]); !ok {
						b.Fatal("missing id")
					}
				}
			})
		}
	}
}

// BenchmarkDescriptorStoreBuild compares populating a store from empty
// to n=100000 — the "build a large network" path, where the flat map
// rehashes its whole population at every doubling.
func BenchmarkDescriptorStoreBuild(b *testing.B) {
	const size = 100000
	rng := sim.NewRNG(17)
	ids := make([]DescriptorID, size)
	d := &Descriptor{}
	for i := range ids {
		copy(ids[i][:], rng.Bytes(20))
	}
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewFlatDescriptorStore()
			for _, id := range ids {
				s.Put(id, d)
			}
		}
	})
	b.Run("sharded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewShardedDescriptorStore()
			for _, id := range ids {
				s.Put(id, d)
			}
		}
	})
	b.Run("mmap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewMmapDescriptorStore()
			for _, id := range ids {
				s.Put(id, d)
			}
			s.Close()
		}
	})
}

// BenchmarkDescriptorStoreChurn compares put/delete churn, the
// rehash-bound operation at scale.
func BenchmarkDescriptorStoreChurn(b *testing.B) {
	const size = 100000
	rng := sim.NewRNG(13)
	ids := make([]DescriptorID, size)
	d := &Descriptor{}
	for i := range ids {
		copy(ids[i][:], rng.Bytes(20))
	}
	for _, backend := range []struct {
		name string
		s    DescriptorStore
	}{
		{"flat", NewFlatDescriptorStore()},
		{"sharded", NewShardedDescriptorStore()},
		{"mmap", NewMmapDescriptorStore()},
	} {
		for _, id := range ids {
			backend.s.Put(id, d)
		}
		b.Run(backend.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				id := ids[i%size]
				backend.s.Delete(id)
				backend.s.Put(id, d)
			}
		})
	}
}
