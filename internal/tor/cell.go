package tor

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// CellSize is the fixed on-wire size of every cell, as in Tor. Fixed
// sizing is load-bearing for the paper: relayed traffic must not leak
// message boundaries or nature.
const CellSize = 512

// cellHeaderSize is circID(8) + cmd(1) + flags(1) + length(2).
const cellHeaderSize = 12

// MaxCellPayload is the usable payload per cell; longer messages are
// fragmented by Conn.
const MaxCellPayload = CellSize - cellHeaderSize

// Command tags the cell type.
type Command byte

// Cell commands. The numbering is internal to the simulator.
const (
	CmdEstablishIntro Command = iota + 1
	CmdEstablishRendezvous
	CmdIntroduce1
	CmdIntroduce2
	CmdRendezvous1
	CmdRendezvous2
	CmdData
	CmdEnd
)

// String names the command for logs.
func (c Command) String() string {
	switch c {
	case CmdEstablishIntro:
		return "ESTABLISH_INTRO"
	case CmdEstablishRendezvous:
		return "ESTABLISH_RENDEZVOUS"
	case CmdIntroduce1:
		return "INTRODUCE1"
	case CmdIntroduce2:
		return "INTRODUCE2"
	case CmdRendezvous1:
		return "RENDEZVOUS1"
	case CmdRendezvous2:
		return "RENDEZVOUS2"
	case CmdData:
		return "DATA"
	case CmdEnd:
		return "END"
	default:
		return fmt.Sprintf("Command(%d)", byte(c))
	}
}

// cell flag bits.
const (
	// flagMore marks a fragment that is not the last of its message.
	flagMore byte = 1 << 0
)

// Cell is one fixed-size unit on the wire.
type Cell struct {
	CircID  uint64
	Cmd     Command
	Flags   byte
	Payload []byte // <= MaxCellPayload
}

// ErrCellTooLarge reports an attempt to build a cell with an oversized
// payload.
var ErrCellTooLarge = errors.New("tor: cell payload exceeds MaxCellPayload")

// Encode renders the cell into a fixed 512-byte array, zero padded. The
// padding keeps every cell the same size on the wire.
func (c *Cell) Encode() ([CellSize]byte, error) {
	var out [CellSize]byte
	if len(c.Payload) > MaxCellPayload {
		return out, fmt.Errorf("%w: %d bytes", ErrCellTooLarge, len(c.Payload))
	}
	binary.BigEndian.PutUint64(out[0:8], c.CircID)
	out[8] = byte(c.Cmd)
	out[9] = c.Flags
	binary.BigEndian.PutUint16(out[10:12], uint16(len(c.Payload)))
	copy(out[cellHeaderSize:], c.Payload)
	return out, nil
}

// DecodeCell parses a fixed-size wire cell.
func DecodeCell(raw [CellSize]byte) (*Cell, error) {
	length := binary.BigEndian.Uint16(raw[10:12])
	if int(length) > MaxCellPayload {
		return nil, fmt.Errorf("tor: cell declares %d payload bytes, max %d", length, MaxCellPayload)
	}
	c := &Cell{
		CircID: binary.BigEndian.Uint64(raw[0:8]),
		Cmd:    Command(raw[8]),
		Flags:  raw[9],
		Payload: append([]byte(nil),
			raw[cellHeaderSize:cellHeaderSize+int(length)]...),
	}
	return c, nil
}
