package tor

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// CellSize is the fixed on-wire size of every cell, as in Tor. Fixed
// sizing is load-bearing for the paper: relayed traffic must not leak
// message boundaries or nature.
const CellSize = 512

// cellHeaderSize is circID(8) + cmd(1) + flags(1) + length(2).
const cellHeaderSize = 12

// MaxCellPayload is the usable payload per cell; longer messages are
// fragmented by Conn.
const MaxCellPayload = CellSize - cellHeaderSize

// Command tags the cell type.
type Command byte

// Cell commands. The numbering is internal to the simulator.
const (
	CmdEstablishIntro Command = iota + 1
	CmdEstablishRendezvous
	CmdIntroduce1
	CmdIntroduce2
	CmdRendezvous1
	CmdRendezvous2
	CmdData
	CmdEnd
)

// String names the command for logs.
func (c Command) String() string {
	switch c {
	case CmdEstablishIntro:
		return "ESTABLISH_INTRO"
	case CmdEstablishRendezvous:
		return "ESTABLISH_RENDEZVOUS"
	case CmdIntroduce1:
		return "INTRODUCE1"
	case CmdIntroduce2:
		return "INTRODUCE2"
	case CmdRendezvous1:
		return "RENDEZVOUS1"
	case CmdRendezvous2:
		return "RENDEZVOUS2"
	case CmdData:
		return "DATA"
	case CmdEnd:
		return "END"
	default:
		return fmt.Sprintf("Command(%d)", byte(c))
	}
}

// cell flag bits.
const (
	// flagMore marks a fragment that is not the last of its message.
	flagMore byte = 1 << 0
)

// Cell is one fixed-size unit on the wire.
type Cell struct {
	CircID  uint64
	Cmd     Command
	Flags   byte
	Payload []byte // <= MaxCellPayload
}

// ErrCellTooLarge reports an attempt to build a cell with an oversized
// payload.
var ErrCellTooLarge = errors.New("tor: cell payload exceeds MaxCellPayload")

// Encode renders the cell into a fixed 512-byte array, zero padded. The
// padding keeps every cell the same size on the wire.
func (c *Cell) Encode() ([CellSize]byte, error) {
	var out [CellSize]byte
	err := c.encodeInto(&out)
	return out, err
}

// encodeInto renders the cell into a caller-provided wire buffer,
// zeroing the padding tail — the allocation-free form the data plane
// uses with stack scratch buffers.
func (c *Cell) encodeInto(wire *[CellSize]byte) error {
	if len(c.Payload) > MaxCellPayload {
		return fmt.Errorf("%w: %d bytes", ErrCellTooLarge, len(c.Payload))
	}
	binary.BigEndian.PutUint64(wire[0:8], c.CircID)
	wire[8] = byte(c.Cmd)
	wire[9] = c.Flags
	binary.BigEndian.PutUint16(wire[10:12], uint16(len(c.Payload)))
	n := copy(wire[cellHeaderSize:], c.Payload)
	tail := wire[cellHeaderSize+n:]
	for i := range tail {
		tail[i] = 0
	}
	return nil
}

// DecodeCell parses a fixed-size wire cell into a freshly allocated
// Cell whose payload is independent of raw.
func DecodeCell(raw [CellSize]byte) (*Cell, error) {
	c := &Cell{}
	if err := decodeCellView(c, &raw); err != nil {
		return nil, err
	}
	c.Payload = append([]byte(nil), c.Payload...)
	return c, nil
}

// decodeCellView parses wire into c with c.Payload aliasing wire's
// storage. The view is only valid while wire is unmodified; the data
// plane processes cells synchronously and copies any payload bytes it
// retains, so terminal handling never needs the DecodeCell copy.
func decodeCellView(c *Cell, wire *[CellSize]byte) error {
	length := binary.BigEndian.Uint16(wire[10:12])
	if int(length) > MaxCellPayload {
		return fmt.Errorf("tor: cell declares %d payload bytes, max %d", length, MaxCellPayload)
	}
	c.CircID = binary.BigEndian.Uint64(wire[0:8])
	c.Cmd = Command(wire[8])
	c.Flags = wire[9]
	c.Payload = wire[cellHeaderSize : cellHeaderSize+int(length)]
	return nil
}
