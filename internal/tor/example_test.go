package tor_test

import (
	"fmt"
	"time"

	"onionbots/internal/sim"
	"onionbots/internal/tor"
)

// Example runs the complete hidden-service life cycle on the simulated
// network: bootstrap, host, dial, exchange a message.
func Example() {
	sched := sim.NewScheduler()
	network := tor.NewNetwork(sched, sim.NewRNG(1), tor.Config{})
	if err := network.Bootstrap(15); err != nil {
		panic(err)
	}

	var seed [32]byte
	seed[0] = 7
	identity := tor.IdentityFromSeed(seed)

	server := tor.NewProxy(network)
	var inbound *tor.Conn
	hs, err := server.Host(identity, func(c *tor.Conn) { inbound = c })
	if err != nil {
		panic(err)
	}

	client := tor.NewProxy(network)
	conn, err := client.Dial(hs.Onion())
	if err != nil {
		panic(err)
	}
	if err := conn.Send([]byte("hello hidden service")); err != nil {
		panic(err)
	}
	sched.RunFor(time.Second)

	msg, _ := inbound.Recv()
	fmt.Println("received:", string(msg))
	fmt.Println("server knows client:", inbound.RemoteOnion() != "")
	fmt.Println("client knows server:", conn.RemoteOnion() == hs.Onion())
	// Output:
	// received: hello hidden service
	// server knows client: false
	// client knows server: true
}

// ExampleComputeDescriptorID evaluates the paper's Section III formulas
// for a fixed identity and instant.
func ExampleComputeDescriptorID() {
	var seed [32]byte
	id := tor.IdentityFromSeed(seed).ServiceID()
	at := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)

	r0 := tor.ComputeDescriptorID(id, nil, 0, at)
	r1 := tor.ComputeDescriptorID(id, nil, 1, at)
	fmt.Println("replicas differ:", r0 != r1)
	fmt.Println("stable within period:", r0 == tor.ComputeDescriptorID(id, nil, 0, at.Add(time.Hour)))
	fmt.Println("rolls next period:", r0 != tor.ComputeDescriptorID(id, nil, 0, at.Add(25*time.Hour)))
	// Output:
	// replicas differ: true
	// stable within period: true
	// rolls next period: true
}
