package tor

import (
	"time"
)

// DefaultBaseBackoff is the first retry delay when a policy enables
// retries without naming one.
const DefaultBaseBackoff = 30 * time.Second

// RetryPolicy bounds how a proxy re-attempts failed dials. Delays run
// on the simulation clock, never the wall clock, so retrying proxies
// stay deterministic at any sweep parallelism. The zero value disables
// retries entirely — a proxy without a policy behaves byte-for-byte
// like one predating the fault plane.
type RetryPolicy struct {
	// MaxAttempts is the total dial budget including the first attempt;
	// values <= 1 mean a single attempt (retries off).
	MaxAttempts int
	// BaseBackoff is the virtual-time delay before the second attempt;
	// each later attempt doubles it. Zero means DefaultBaseBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling. Zero means 16 × BaseBackoff.
	MaxBackoff time.Duration
}

// Enabled reports whether the policy grants any retries at all.
func (rp RetryPolicy) Enabled() bool { return rp.MaxAttempts > 1 }

// backoff returns the delay inserted before the given attempt
// (attempt >= 2): BaseBackoff doubled per failure, capped at
// MaxBackoff.
func (rp RetryPolicy) backoff(attempt int) time.Duration {
	base := rp.BaseBackoff
	if base <= 0 {
		base = DefaultBaseBackoff
	}
	max := rp.MaxBackoff
	if max <= 0 {
		max = 16 * base
	}
	d := base
	for i := 2; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// Span is the total virtual time the policy can spend waiting between
// attempts — the horizon after which a DialAsync is guaranteed to have
// delivered its outcome. Experiments use it to size their drain tail.
func (rp RetryPolicy) Span() time.Duration {
	var total time.Duration
	for a := 2; a <= rp.MaxAttempts; a++ {
		total += rp.backoff(a)
	}
	return total
}

// DialAsync dials a hidden service under the proxy's retry policy,
// delivering the outcome to done exactly once. With retries disabled
// (the zero policy) it is a plain synchronous Dial — done runs before
// DialAsync returns. With retries enabled, each failure invalidates the
// proxy's verified-descriptor cache entry and guard set, rotates the
// replica preference for the next descriptor fetch, and schedules the
// next attempt after an exponential backoff on the simulation clock.
func (p *OnionProxy) DialAsync(onion string, done func(*Conn, error)) {
	conn, err := p.Dial(onion)
	if err == nil {
		done(conn, nil)
		return
	}
	if !p.Retry.Enabled() {
		done(nil, err)
		return
	}
	p.afterDialFailure(onion)
	p.scheduleRetry(onion, 2, err, done)
}

// scheduleRetry arms the backoff timer for the given attempt number,
// re-dialing when it fires and recursing until the budget is spent.
func (p *OnionProxy) scheduleRetry(onion string, attempt int, lastErr error, done func(*Conn, error)) {
	if attempt > p.Retry.MaxAttempts {
		done(nil, lastErr)
		return
	}
	p.net.sched.After(p.Retry.backoff(attempt), func() {
		p.net.stats.DialRetries++
		conn, err := p.Dial(onion)
		if err == nil {
			p.net.stats.DialRecoveries++
			done(conn, nil)
			return
		}
		p.afterDialFailure(onion)
		p.scheduleRetry(onion, attempt+1, err, done)
	})
}

// afterDialFailure invalidates per-service state a failed dial may have
// relied on, so the next attempt starts from the directories instead of
// replaying the same doomed plan: the verified-descriptor cache entry
// is dropped, the guard set is re-validated against the live relay
// table even if the membership epoch is unchanged, and the descriptor
// fetch order rotates to prefer a different replica.
func (p *OnionProxy) afterDialFailure(onion string) {
	if sid, err := ParseOnion(onion); err == nil {
		p.forgetDescriptor(sid)
	}
	p.guardsDirty = true
	p.replicaOffset++
}
