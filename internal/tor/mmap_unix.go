//go:build unix

package tor

import "syscall"

// mmapChunk is one log segment. On unix it is an anonymous private
// mapping: the bytes live outside the Go heap (the GC never scans
// them), pages are committed lazily on first touch, and release
// returns them to the OS immediately instead of waiting for a GC
// cycle.
type mmapChunk struct {
	buf    []byte
	mapped bool
}

func newMmapChunk(size int) mmapChunk {
	buf, err := syscall.Mmap(-1, 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil {
		// Out of address space or mapping limit; fall back to a heap
		// slice rather than aborting the simulation.
		return mmapChunk{buf: make([]byte, size)}
	}
	return mmapChunk{buf: buf, mapped: true}
}

func (c mmapChunk) bytes() []byte { return c.buf }

func (c mmapChunk) release() {
	if c.mapped {
		_ = syscall.Munmap(c.buf)
	}
}
