package tor

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// DescriptorID is the ring position at which a hidden-service descriptor
// is stored.
type DescriptorID [20]byte

// Less orders descriptor IDs on the same ring as fingerprints.
func (d DescriptorID) Less(f Fingerprint) bool {
	for i := range d {
		if d[i] != f[i] {
			return d[i] < f[i]
		}
	}
	return false
}

// NumReplicas is the number of descriptor replicas Tor distributes; each
// replica lands on HSDirsPerReplica consecutive HSDirs, so every hidden
// service has NumReplicas*HSDirsPerReplica responsible directories.
const (
	NumReplicas      = 2
	HSDirsPerReplica = 3
)

// TimePeriod computes the paper's time-period value:
//
//	time-period = (current-time + permanent-id-byte * 86400 / 256) / 86400
//
// where permanent-id-byte is the first byte of the service identifier.
// The per-identity offset staggers descriptor rollover so all services
// do not change HSDirs at the same instant.
func TimePeriod(now time.Time, id ServiceID) uint64 {
	unix := uint64(now.Unix())
	offset := uint64(id[0]) * 86400 / 256
	return (unix + offset) / 86400
}

// ComputeDescriptorID evaluates the paper's formulas:
//
//	secret-id-part = H(time-period || descriptor-cookie || replica)
//	descriptor-id  = H(identifier || secret-id-part)
//
// H is SHA-1. cookie may be nil (no client authorization).
func ComputeDescriptorID(id ServiceID, cookie []byte, replica int, now time.Time) DescriptorID {
	var tp [8]byte
	binary.BigEndian.PutUint64(tp[:], TimePeriod(now, id))

	h := sha1.New()
	h.Write(tp[:])
	h.Write(cookie)
	h.Write([]byte{byte(replica)})
	secret := h.Sum(nil)

	h = sha1.New()
	h.Write(id[:])
	h.Write(secret)
	var out DescriptorID
	copy(out[:], h.Sum(nil))
	return out
}

// DescriptorIDs returns the descriptor IDs for every replica.
func DescriptorIDs(id ServiceID, cookie []byte, now time.Time) [NumReplicas]DescriptorID {
	var out [NumReplicas]DescriptorID
	for r := 0; r < NumReplicas; r++ {
		out[r] = ComputeDescriptorID(id, cookie, r, now)
	}
	return out
}

// Descriptor is a published hidden-service descriptor: enough for a
// client to verify the service identity and reach its introduction
// points.
type Descriptor struct {
	// Pub is the service's public key; clients check that
	// SHA-1(Pub)[:10] matches the ServiceID they dialed.
	Pub ed25519.PublicKey
	// IntroPoints are the fingerprints of the service's current
	// introduction relays.
	IntroPoints []Fingerprint
	// TimePeriod records the period the descriptor was computed for.
	TimePeriod uint64
	// Replica is which replica this copy is (0-based). It is location
	// metadata — which ring position the copy was uploaded to — not
	// content, and is not covered by Sig: the replicas of a publication
	// are one signed document stored at NumReplicas ring positions, as
	// in Tor, so a service signs (and every verifier checks) each
	// publication once rather than once per replica. A tampered Replica
	// can at worst make a client's cache-coherence probe miss and
	// refetch.
	Replica int
	// PublishedAt timestamps the upload; directories expire stale
	// descriptors.
	PublishedAt time.Time
	// Sig is the service's signature over the canonical encoding.
	Sig []byte

	// verified caches a successful Verify (or an in-process signing)
	// for verifiedSID, so the several directories a publication fans
	// out to skip even the memo digest. Descriptors are immutable once
	// stored (directories clone on ingest and serve shared pointers);
	// the mark is cleared on clone, so a copy in untrusted hands must
	// re-earn it.
	verified    bool
	verifiedSID ServiceID
}

// ErrBadDescriptor reports a descriptor whose signature or identity
// binding fails verification.
var ErrBadDescriptor = errors.New("tor: descriptor verification failed")

// signingBytes is the canonical byte string covered by Sig.
func (d *Descriptor) signingBytes() []byte {
	buf := make([]byte, 0, 64+20*len(d.IntroPoints))
	buf = append(buf, d.Pub...)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], d.TimePeriod)
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(d.PublishedAt.Unix()))
	buf = append(buf, tmp[:]...)
	for _, ip := range d.IntroPoints {
		buf = append(buf, ip[:]...)
	}
	return buf
}

// Sign populates Sig using the service's private key.
func (d *Descriptor) Sign(priv ed25519.PrivateKey) {
	d.Sig = ed25519.Sign(priv, d.signingBytes())
}

// Verify checks the signature and, when the caller knows the service it
// dialed, the identity binding.
func (d *Descriptor) Verify(want ServiceID) error {
	if len(d.Pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad public key length %d", ErrBadDescriptor, len(d.Pub))
	}
	if id := ServiceIDOf(d.Pub); id != want {
		return fmt.Errorf("%w: identity mismatch (got %s want %s)", ErrBadDescriptor, id, want)
	}
	if !ed25519.Verify(d.Pub, d.signingBytes(), d.Sig) {
		return fmt.Errorf("%w: bad signature", ErrBadDescriptor)
	}
	return nil
}

// equal reports field-for-field equality — used by the descriptor-cache
// coherence probe, where signature equality alone must not be trusted
// (a tampered descriptor could splice a valid signature onto altered
// intro points).
func (d *Descriptor) equal(o *Descriptor) bool {
	if !bytes.Equal(d.Pub, o.Pub) ||
		d.TimePeriod != o.TimePeriod ||
		d.Replica != o.Replica ||
		!d.PublishedAt.Equal(o.PublishedAt) ||
		!bytes.Equal(d.Sig, o.Sig) ||
		len(d.IntroPoints) != len(o.IntroPoints) {
		return false
	}
	for i := range d.IntroPoints {
		if d.IntroPoints[i] != o.IntroPoints[i] {
			return false
		}
	}
	return true
}

// clone returns a defensive copy (directories hand descriptors to
// untrusted callers). The verified mark deliberately does NOT travel:
// the holder of a clone may mutate its exported fields, and a spliced
// descriptor must re-earn verification (the content-keyed network memo
// makes that a digest, not a scalar multiplication, when the bytes are
// genuinely unchanged).
func (d *Descriptor) clone() *Descriptor {
	out := *d
	out.Pub = append(ed25519.PublicKey(nil), d.Pub...)
	out.IntroPoints = append([]Fingerprint(nil), d.IntroPoints...)
	out.Sig = append([]byte(nil), d.Sig...)
	out.verified = false
	out.verifiedSID = ServiceID{}
	return &out
}
