package tor

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"onionbots/internal/sim"
)

// Config tunes the simulated network. Zero fields take the defaults
// matching the paper's description of Tor.
type Config struct {
	// HSDirUptime is the uptime a relay needs before the next consensus
	// grants it the HSDir flag. Default 25h (Section III).
	HSDirUptime time.Duration
	// ConsensusInterval is how often the authorities publish. Default 1h.
	ConsensusInterval time.Duration
	// DescriptorTTL is how long directories serve a stored descriptor.
	// Default 24h.
	DescriptorTTL time.Duration
	// IntroPoints is how many introduction points each hidden service
	// maintains. Default 3.
	IntroPoints int
	// PathLen is the relay count per circuit. Default 3.
	PathLen int
	// HopLatency is the virtual per-hop delivery delay applied to DATA
	// cells end to end. Default 50ms.
	HopLatency time.Duration
	// NewDescriptorStore constructs the per-HSDir descriptor backend.
	// Default NewShardedDescriptorStore; set to NewFlatDescriptorStore
	// (or a custom backend) to swap the storage layer network-wide.
	NewDescriptorStore func() DescriptorStore
}

func (c Config) withDefaults() Config {
	if c.HSDirUptime == 0 {
		c.HSDirUptime = 25 * time.Hour
	}
	if c.ConsensusInterval == 0 {
		c.ConsensusInterval = time.Hour
	}
	if c.DescriptorTTL == 0 {
		c.DescriptorTTL = 24 * time.Hour
	}
	if c.IntroPoints == 0 {
		c.IntroPoints = 3
	}
	if c.PathLen == 0 {
		c.PathLen = 3
	}
	if c.HopLatency == 0 {
		c.HopLatency = 50 * time.Millisecond
	}
	if c.NewDescriptorStore == nil {
		c.NewDescriptorStore = func() DescriptorStore { return NewShardedDescriptorStore() }
	}
	return c
}

// NetworkStats aggregates network-wide counters.
type NetworkStats struct {
	CircuitsBuilt  int
	CellsSwitched  int
	ConsensusCount int

	// Fault-plane counters: how often the protocol stack failed,
	// re-attempted, and recovered. All stay zero on fault-free runs.
	//
	// DialFailures counts dial attempts that returned an error (every
	// attempt, including ones a retry later redeemed). DialRetries
	// counts re-attempts scheduled by DialAsync under a retry policy;
	// DialRecoveries counts dials that succeeded after at least one
	// retry. IntroFaultsInjected counts INTRODUCE1 cells eaten by an
	// injected intro fault, and PublishRepairs counts descriptor
	// republishes forced by the responsible-HSDir set moving under a
	// hidden service (directory loss healing).
	DialFailures        int
	DialRetries         int
	DialRecoveries      int
	IntroFaultsInjected int
	PublishRepairs      int
}

// ErrNoConsensus reports an operation that requires a published
// consensus before one exists.
var ErrNoConsensus = errors.New("tor: no consensus published yet")

// ErrNotEnoughRelays reports a path request the consensus cannot satisfy.
var ErrNotEnoughRelays = errors.New("tor: not enough relays")

// Network is the simulated Tor network: relays, consensus, and the
// virtual clock they share.
type Network struct {
	sched     *sim.Scheduler
	rng       *sim.RNG
	cfg       Config
	relays    *relayTable
	order     []*Relay // insertion order (swap-removed; consensus sorts)
	consensus *Consensus
	nextCirc  uint64
	stats     NetworkStats
	autoCons  bool
	// relayEpoch counts relay-membership changes; proxies use it to
	// skip re-validating their guard sets while the relay population is
	// unchanged (the common case between takedown events).
	relayEpoch uint64

	// Ed25519 verification memos. Signature verification is a pure
	// function of immutable bytes, so once any party has verified a
	// descriptor or intro binding, re-running the check elsewhere in the
	// simulation must give the same answer; the memos skip the repeated
	// ~70µs scalar multiplications without changing a single outcome.
	// Entries accumulate for the life of the run, bounded by the number
	// of distinct descriptors published and services hosted.
	verifiedDescs  map[[sha256.Size]byte]struct{}
	verifiedIntros map[[ed25519.PublicKeySize + ed25519.SignatureSize]byte]struct{}

	// cellCipher is the shared AES schedule behind every hop's CTR
	// stream; see stream.go for the keying model.
	cellCipher cipher.Block

	// wireFree recycles cell scratch buffers through the synchronous
	// data plane. Cells are processed depth-first on one goroutine, so a
	// buffer is always returned after its call tree unwinds; the
	// freelist's high-water mark is the deepest cell nesting of the run.
	wireFree []*[CellSize]byte

	// Intro-fault injection (internal/faults.IntroFailure): when armed,
	// each INTRODUCE1 a client sends is eaten with probability
	// introFaultP, decided by a draw from introFaultRNG — the fault
	// process's private substream, so arming the fault never perturbs
	// the network's main random stream.
	introFaultP    float64
	introFaultRNG  *sim.RNG
	introFaultNote func()
}

// getWire takes a cell buffer off the freelist (or allocates one).
// Callers must putWire it back once the cell's synchronous processing
// has fully unwound, and must not retain references past that point.
func (n *Network) getWire() *[CellSize]byte {
	if len(n.wireFree) == 0 {
		return new([CellSize]byte)
	}
	w := n.wireFree[len(n.wireFree)-1]
	n.wireFree = n.wireFree[:len(n.wireFree)-1]
	return w
}

// putWire returns a cell buffer to the freelist.
func (n *Network) putWire(w *[CellSize]byte) {
	n.wireFree = append(n.wireFree, w)
}

// NewNetwork creates an empty network on the given scheduler and RNG.
func NewNetwork(sched *sim.Scheduler, rng *sim.RNG, cfg Config) *Network {
	block, err := aes.NewCipher([]byte("onionbots-cells!"))
	if err != nil {
		panic("tor: cell cipher: " + err.Error())
	}
	return &Network{
		sched:          sched,
		rng:            rng,
		cfg:            cfg.withDefaults(),
		relays:         newRelayTable(),
		verifiedDescs:  make(map[[sha256.Size]byte]struct{}),
		verifiedIntros: make(map[[ed25519.PublicKeySize + ed25519.SignatureSize]byte]struct{}),
		cellCipher:     block,
	}
}

// descMemoKey digests one (service, descriptor) pair for the verify
// memo. The digest covers the dialed service id plus every signed byte;
// the variable-size fields are length-framed so bytes cannot be moved
// across the signingBytes/Sig boundary to collide with an
// already-verified descriptor's digest.
func descMemoKey(sid ServiceID, d *Descriptor) [sha256.Size]byte {
	signed := d.signingBytes()
	var frame [8]byte
	binary.BigEndian.PutUint64(frame[:], uint64(len(signed)))
	h := sha256.New()
	h.Write(sid[:])
	h.Write(frame[:])
	h.Write(signed)
	h.Write(d.Sig)
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// verifyDescriptor is Descriptor.Verify memoized across the network. A
// memo hit proves this exact (service, descriptor) pair already passed
// the full check somewhere in the run — or was signed in-process by the
// service itself (noteSignedDescriptor), which is the same statement.
func (n *Network) verifyDescriptor(sid ServiceID, d *Descriptor) error {
	if d.verified && d.verifiedSID == sid {
		return nil // this exact object already passed for this service
	}
	key := descMemoKey(sid, d)
	if _, ok := n.verifiedDescs[key]; ok {
		d.verified, d.verifiedSID = true, sid
		return nil
	}
	if err := d.Verify(sid); err != nil {
		return err
	}
	n.verifiedDescs[key] = struct{}{}
	d.verified, d.verifiedSID = true, sid
	return nil
}

// noteSignedDescriptor records a descriptor the holder of priv has just
// signed as verified, skipping the redundant scalar multiplications a
// directory (and every later client) would spend re-checking bytes that
// are valid by construction: Ed25519 signing is deterministic and
// correct, so Verify(pub, msg, Sign(priv, msg)) always holds when priv's
// embedded public half is pub. That embedding is checked here; Identity
// keypairs are only ever minted by NewIdentity/IdentityFromSeed, whose
// halves match by construction.
func (n *Network) noteSignedDescriptor(priv ed25519.PrivateKey, d *Descriptor) {
	pub, ok := priv.Public().(ed25519.PublicKey)
	if !ok || !bytes.Equal(pub, d.Pub) {
		return // not the service's own descriptor; let Verify decide
	}
	sid := ServiceIDOf(d.Pub)
	n.verifiedDescs[descMemoKey(sid, d)] = struct{}{}
	d.verified, d.verifiedSID = true, sid
}

// PreverifyIntro runs (and memoizes) the ESTABLISH_INTRO binding check
// for an identity ahead of hosting. Identity pools call it during
// warmup so the signature verification a join would trigger at its
// introduction points has already happened off the hot path.
func (n *Network) PreverifyIntro(id *Identity) bool {
	payload := id.IntroPayload()
	return n.verifyIntroBinding(id.Pub, payload[ed25519.PublicKeySize:])
}

// verifyIntroBinding memoizes the ESTABLISH_INTRO signature check: a
// service presents the same (pub, sig) pair to every introduction relay
// it ever recruits.
func (n *Network) verifyIntroBinding(pub ed25519.PublicKey, sig []byte) bool {
	var key [ed25519.PublicKeySize + ed25519.SignatureSize]byte
	copy(key[:ed25519.PublicKeySize], pub)
	copy(key[ed25519.PublicKeySize:], sig)
	if _, ok := n.verifiedIntros[key]; ok {
		return true
	}
	if !ed25519.Verify(pub, introBinding(pub), sig) {
		return false
	}
	n.verifiedIntros[key] = struct{}{}
	return true
}

// Now reports the network's virtual time.
func (n *Network) Now() time.Time { return n.sched.Now() }

// Scheduler exposes the shared virtual clock.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// RNG exposes the network's random stream (used by proxies for path
// selection so a single seed drives the whole run).
func (n *Network) RNG() *sim.RNG { return n.rng }

// Config returns the effective configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a copy of the network counters.
func (n *Network) Stats() NetworkStats { return n.stats }

// Consensus returns the latest published consensus (nil before the
// first publication).
func (n *Network) Consensus() *Consensus { return n.consensus }

// AddRelay generates a fresh relay identity and joins it to the network.
// The relay appears in consensuses published from now on and earns the
// HSDir flag once its uptime crosses Config.HSDirUptime.
func (n *Network) AddRelay() (*Relay, error) {
	var seed [32]byte
	copy(seed[:], n.rng.Bytes(32))
	return n.AddRelayWithSeed(seed)
}

// AddRelayWithSeed joins a relay whose identity derives from the given
// seed. Fault processes restarting crashed relays use it with seeds
// drawn from their own substream, so a restart never consumes the
// network's shared random stream (which would shift every later path
// choice and break cross-run byte equality).
func (n *Network) AddRelayWithSeed(seed [32]byte) (*Relay, error) {
	return n.addRelayWithIdentity(IdentityFromSeed(seed))
}

// SetIntroFault arms (or with p <= 0 disarms) per-dial introduction
// failure: each INTRODUCE1 is eaten with probability p, decided by a
// draw from rng. note, when non-nil, runs once per injected fault so
// the fault plane can trace injections. The draw always comes from rng,
// never the network stream — see introFaultRNG.
func (n *Network) SetIntroFault(p float64, rng *sim.RNG, note func()) {
	if p <= 0 || rng == nil {
		n.introFaultP, n.introFaultRNG, n.introFaultNote = 0, nil, nil
		return
	}
	n.introFaultP, n.introFaultRNG, n.introFaultNote = p, rng, note
}

// introFaultHit decides whether the armed intro fault eats this dial's
// INTRODUCE1. Always false when no fault is armed.
func (n *Network) introFaultHit() bool {
	if n.introFaultRNG == nil {
		return false
	}
	if n.introFaultRNG.Float64() >= n.introFaultP {
		return false
	}
	n.stats.IntroFaultsInjected++
	if n.introFaultNote != nil {
		n.introFaultNote()
	}
	return true
}

// InjectRelayAtFingerprint joins a relay whose fingerprint is exactly
// fp. This models a Section VI-A adversary that has already spent the
// brute-force key-search effort to land at a chosen ring position; the
// 25-hour HSDir-flag delay still applies, which is the timing constraint
// the paper highlights.
func (n *Network) InjectRelayAtFingerprint(fp Fingerprint) (*Relay, error) {
	if n.relays.get(fp) != nil {
		return nil, fmt.Errorf("tor: fingerprint %s already present", fp)
	}
	r := n.newRelay(nil, fp)
	return r, nil
}

func (n *Network) addRelayWithIdentity(id *Identity) (*Relay, error) {
	fp := id.Fingerprint()
	if n.relays.get(fp) != nil {
		return nil, fmt.Errorf("tor: fingerprint %s already present", fp)
	}
	return n.newRelay(id, fp), nil
}

func (n *Network) newRelay(id *Identity, fp Fingerprint) *Relay {
	r := &Relay{
		id:             id,
		fp:             fp,
		net:            n,
		joined:         n.Now(),
		circuits:       make(map[uint64]*relayCirc),
		introByService: make(map[ServiceID]uint64),
		rendByCookie:   make(map[[cookieSize]byte]uint64),
		store:          n.cfg.NewDescriptorStore(),
	}
	n.relays.put(fp, r)
	r.orderIdx = len(n.order)
	n.order = append(n.order, r)
	n.relayEpoch++
	return r
}

// Relay returns the live relay for a fingerprint, or nil.
func (n *Network) Relay(fp Fingerprint) *Relay { return n.relays.get(fp) }

// RemoveRelay kills a relay (operator shutdown, seizure, DoS). Every
// circuit through it is destroyed in both directions — connections
// riding those circuits die, and hidden services lose any introduction
// point hosted there. The relay leaves future consensuses at the next
// publication.
func (n *Network) RemoveRelay(fp Fingerprint) {
	r := n.relays.get(fp)
	if r == nil {
		return
	}
	ids := make([]uint64, 0, len(r.circuits))
	for id := range r.circuits {
		ids = append(ids, id)
	}
	sortUint64(ids)
	for _, id := range ids {
		rc, ok := r.circuits[id]
		if !ok {
			continue
		}
		delete(r.circuits, id)
		if rc.linked != 0 {
			if lc, ok := r.circuits[rc.linked]; ok {
				lc.linked = 0
				r.destroyBackward(lc, rc.linked)
				delete(r.circuits, rc.linked)
			}
		}
		if rc.next != nil {
			end := Cell{CircID: id, Cmd: CmdEnd}
			wire := n.getWire()
			if err := end.encodeInto(wire); err == nil {
				rc.next.teardownForward(id, wire)
			}
			n.putWire(wire)
		}
		r.destroyBackward(rc, id)
	}
	n.relays.remove(fp)
	// A store holding off-process resources (the mmap backend's
	// mappings) is released now rather than at the next GC cycle, so
	// relay churn cannot accumulate dead mappings.
	if c, ok := r.store.(interface{ Close() }); ok {
		c.Close()
	}
	// Swap-remove from the insertion-order slice: O(1) per removal, and
	// harmless to determinism because PublishConsensus sorts its snapshot
	// by fingerprint before anything consumes it.
	last := len(n.order) - 1
	if moved := n.order[last]; moved != r {
		n.order[r.orderIdx] = moved
		moved.orderIdx = r.orderIdx
	}
	n.order[last] = nil
	n.order = n.order[:last]
	n.relayEpoch++
}

// destroyBackward walks toward the circuit origin deleting state and
// finally notifies the origin proxy. Unlike data cells, destruction is
// a link-level signal (as Tor's DESTROY is) and bypasses onion crypto.
func (r *Relay) destroyBackward(rc *relayCirc, circID uint64) {
	prev := rc.prev
	origin := rc.origin
	for prev != nil {
		prc, ok := prev.circuits[circID]
		if !ok {
			return
		}
		delete(prev.circuits, circID)
		if prc.introService != (ServiceID{}) {
			if cur, ok := prev.introByService[prc.introService]; ok && cur == circID {
				delete(prev.introByService, prc.introService)
			}
		}
		origin = prc.origin
		prev = prc.prev
	}
	if origin != nil {
		origin.circuitDestroyed(circID)
	}
}

func sortUint64(xs []uint64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// NumRelays reports how many relays are joined.
func (n *Network) NumRelays() int { return n.relays.len() }

// PublishConsensus snapshots the relay list, assigning the HSDir flag to
// relays with sufficient uptime.
func (n *Network) PublishConsensus() *Consensus {
	now := n.Now()
	infos := make([]RelayInfo, 0, len(n.order))
	for _, r := range n.order {
		infos = append(infos, RelayInfo{
			FP:    r.fp,
			HSDir: r.Uptime(now) >= n.cfg.HSDirUptime,
		})
	}
	n.consensus = newConsensus(now, infos)
	n.stats.ConsensusCount++
	return n.consensus
}

// StartConsensusSchedule begins hourly consensus publication on the
// virtual clock. Call once; repeated calls are no-ops.
func (n *Network) StartConsensusSchedule() {
	if n.autoCons {
		return
	}
	n.autoCons = true
	n.sched.Every(n.cfg.ConsensusInterval, func() bool {
		n.PublishConsensus()
		return true
	})
}

// Bootstrap is the standard test/experiment setup: join numRelays
// relays, advance virtual time past the HSDir uptime threshold, publish
// a consensus, and start the hourly schedule.
func (n *Network) Bootstrap(numRelays int) error {
	if numRelays < n.cfg.PathLen {
		return fmt.Errorf("%w: %d < path length %d", ErrNotEnoughRelays, numRelays, n.cfg.PathLen)
	}
	for i := 0; i < numRelays; i++ {
		if _, err := n.AddRelay(); err != nil {
			return err
		}
	}
	n.sched.RunFor(n.cfg.HSDirUptime + time.Hour)
	n.PublishConsensus()
	n.StartConsensusSchedule()
	return nil
}

// pickPath selects a circuit path of cfg.PathLen distinct relays ending
// at terminal (terminal may be zero-valued for "any"), excluding none.
func (n *Network) pickPath(terminal Fingerprint) ([]*Relay, error) {
	c := n.consensus
	if c == nil {
		return nil, ErrNoConsensus
	}
	exclude := map[Fingerprint]struct{}{}
	var terminalRelay *Relay
	hops := n.cfg.PathLen
	if terminal != (Fingerprint{}) {
		terminalRelay = n.relays.get(terminal)
		if terminalRelay == nil {
			return nil, fmt.Errorf("tor: terminal relay %s not found", terminal)
		}
		exclude[terminal] = struct{}{}
		hops--
	}
	// Skip-and-resample dead consensus entries, as in OnionProxy.pickPath:
	// the consensus may list relays that died since publication.
	path := make([]*Relay, 0, n.cfg.PathLen)
	for len(path) < hops {
		fps := c.PickRelays(n.rng, hops-len(path), exclude)
		if len(fps) < hops-len(path) {
			return nil, fmt.Errorf("%w: need %d, consensus offers %d", ErrNotEnoughRelays, hops, len(path)+len(fps))
		}
		for _, fp := range fps {
			exclude[fp] = struct{}{}
			if r := n.relays.get(fp); r != nil {
				path = append(path, r)
			}
		}
	}
	if terminalRelay != nil {
		path = append(path, terminalRelay)
	}
	return path, nil
}
