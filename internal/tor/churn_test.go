package tor

import (
	"testing"
	"time"
)

// Relay churn: the "Tor DoSing" half of the paper's takedown story —
// infrastructure failing under the botnet rather than bots being
// cleaned.

func TestRemoveRelayKillsCrossingConnections(t *testing.T) {
	n := newTestNetwork(t, 90, 15)
	server := NewProxy(n)
	var serverConn *Conn
	hs, err := server.Host(testIdentity(t, 40), func(c *Conn) { serverConn = c })
	if err != nil {
		t.Fatal(err)
	}
	conn, err := NewProxy(n).Dial(hs.Onion())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("alive")); err != nil {
		t.Fatal(err)
	}
	n.Scheduler().RunFor(time.Second)
	if _, ok := serverConn.Recv(); !ok {
		t.Fatal("sanity: message lost before churn")
	}

	// Kill every relay that carries circuit state: the connection
	// definitely crossed some of them.
	for _, ri := range append([]RelayInfo(nil), n.Consensus().Relays...) {
		r := n.Relay(ri.FP)
		if r != nil && len(r.circuits) > 0 {
			n.RemoveRelay(ri.FP)
		}
	}
	if !conn.Closed() && conn.Send([]byte("ghost")) == nil {
		t.Fatal("send succeeded across destroyed circuits")
	}
}

func TestRemoveRelayAbsentIsNoop(t *testing.T) {
	n := newTestNetwork(t, 91, 10)
	n.RemoveRelay(Fingerprint{9, 9, 9}) // must not panic
	if n.NumRelays() != 10 {
		t.Fatal("absent removal changed relay count")
	}
}

func TestServiceRepairsIntroPointsAfterChurn(t *testing.T) {
	n := newTestNetwork(t, 92, 20)
	server := NewProxy(n)
	hs, err := server.Host(testIdentity(t, 41), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	// Kill every introduction relay of the service.
	for _, ip := range hs.IntroPoints() {
		n.RemoveRelay(ip)
	}
	n.PublishConsensus()
	// The hourly service tick repairs intro circuits and republishes.
	n.Scheduler().RunFor(2 * time.Hour)
	conn, err := NewProxy(n).Dial(hs.Onion())
	if err != nil {
		t.Fatalf("dial after intro-point churn failed: %v", err)
	}
	conn.Close()
	// The repaired intro points are different relays.
	for _, ip := range hs.IntroPoints() {
		if n.Relay(ip) == nil {
			t.Fatal("descriptor still lists a dead intro relay")
		}
	}
}

func TestConsensusDropsRemovedRelays(t *testing.T) {
	n := newTestNetwork(t, 93, 12)
	victim := n.Consensus().Relays[0].FP
	n.RemoveRelay(victim)
	n.PublishConsensus()
	if n.Consensus().NumRelays() != 11 {
		t.Fatalf("consensus relays = %d, want 11", n.Consensus().NumRelays())
	}
	if n.Consensus().IsHSDir(victim) {
		t.Fatal("removed relay still listed as HSDir")
	}
}

func TestNetworkSurvivesHeavyRelayChurn(t *testing.T) {
	// Remove a third of the relays while services keep operating; after
	// consensus refresh and intro repair, dialing still works.
	n := newTestNetwork(t, 94, 24)
	server := NewProxy(n)
	hs, err := server.Host(testIdentity(t, 42), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	relays := append([]RelayInfo(nil), n.Consensus().Relays...)
	for i := 0; i < 8; i++ {
		n.RemoveRelay(relays[i].FP)
		n.Scheduler().RunFor(30 * time.Minute)
	}
	n.Scheduler().RunFor(2 * time.Hour)
	if _, err := NewProxy(n).Dial(hs.Onion()); err != nil {
		t.Fatalf("dial after heavy churn failed: %v", err)
	}
}
