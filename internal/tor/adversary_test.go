package tor

import (
	"errors"
	"math"
	"testing"
	"time"

	"onionbots/internal/sim"
)

func TestOccupyDescriptorRingNeedsUptime(t *testing.T) {
	// Injection alone must not deny service: the adversary relays lack
	// the HSDir flag until 25h of uptime (the paper's key timing
	// constraint for this mitigation).
	n := newTestNetwork(t, 30, 20)
	server := NewProxy(n)
	id := testIdentity(t, 11)
	hs, err := server.Host(id, func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}

	injected, err := OccupyDescriptorRing(n, id.ServiceID(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(injected) != NumReplicas*HSDirsPerReplica {
		t.Fatalf("injected %d relays, want %d", len(injected), NumReplicas*HSDirsPerReplica)
	}
	n.PublishConsensus()
	for _, r := range injected {
		if n.Consensus().IsHSDir(r.Fingerprint()) {
			t.Fatal("zero-uptime adversary relay received HSDir flag")
		}
	}
	if _, err := NewProxy(n).Dial(hs.Onion()); err != nil {
		t.Fatalf("dial failed before adversary relays earned the flag: %v", err)
	}
}

func TestDescriptorDenialWithPrePositionedRelays(t *testing.T) {
	// The full Section VI-A attack: the adversary positions relays for
	// the descriptor ids of a future period, waits out the 25h flag
	// delay, and then suppresses the descriptor — the service becomes
	// unreachable even though it is up and publishing.
	n := NewNetwork(sim.NewScheduler(), sim.NewRNG(31), Config{})
	id := testIdentity(t, 12)
	sid := id.ServiceID()

	// Bootstrap will advance the clock by HSDirUptime+1h = 26h; position
	// the malicious relays for the descriptor ids current at that time.
	future := n.Now().Add(26 * time.Hour)
	var adversarial []*Relay
	for r := 0; r < NumReplicas; r++ {
		descID := ComputeDescriptorID(sid, nil, r, future)
		for _, fp := range PositionFingerprints(descID, HSDirsPerReplica) {
			relay, err := n.InjectRelayAtFingerprint(fp)
			if err != nil {
				t.Fatal(err)
			}
			relay.SetMalicious(true)
			adversarial = append(adversarial, relay)
		}
	}
	if err := n.Bootstrap(20); err != nil {
		t.Fatal(err)
	}
	for _, r := range adversarial {
		if !n.Consensus().IsHSDir(r.Fingerprint()) {
			t.Fatal("pre-positioned adversary relay missing HSDir flag after bootstrap")
		}
	}

	server := NewProxy(n)
	hs, err := server.Host(id, func(*Conn) {})
	if err != nil {
		t.Fatalf("hosting failed: %v", err)
	}
	// Every responsible HSDir is malicious: they accepted the upload
	// but refuse to serve it.
	_, err = NewProxy(n).Dial(hs.Onion())
	if !errors.Is(err, ErrNoDescriptor) {
		t.Fatalf("dial error = %v, want ErrNoDescriptor (descriptor suppressed)", err)
	}

	// The denial is period-scoped: once the descriptor period rolls,
	// the service republishes at fresh ring positions the adversary
	// does not occupy, and reachability returns. This is the
	// re-positioning treadmill the paper describes.
	n.Scheduler().RunFor(25 * time.Hour)
	if _, err := NewProxy(n).Dial(hs.Onion()); err != nil {
		t.Fatalf("dial after period roll failed: %v (adversary should be stale)", err)
	}
}

func TestPartialRingOccupationDoesNotDeny(t *testing.T) {
	// Occupying only one replica's positions leaves the other replica
	// serving; redundancy defeats a half-hearted attack.
	n := NewNetwork(sim.NewScheduler(), sim.NewRNG(32), Config{})
	id := testIdentity(t, 13)
	sid := id.ServiceID()
	future := n.Now().Add(26 * time.Hour)
	descID := ComputeDescriptorID(sid, nil, 0, future) // replica 0 only
	for _, fp := range PositionFingerprints(descID, HSDirsPerReplica) {
		relay, err := n.InjectRelayAtFingerprint(fp)
		if err != nil {
			t.Fatal(err)
		}
		relay.SetMalicious(true)
	}
	if err := n.Bootstrap(20); err != nil {
		t.Fatal(err)
	}
	server := NewProxy(n)
	hs, err := server.Host(id, func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProxy(n).Dial(hs.Onion()); err != nil {
		t.Fatalf("dial failed with only one replica suppressed: %v", err)
	}
}

func TestPositionFingerprintsOrderedAndTight(t *testing.T) {
	var target DescriptorID
	target[0] = 0x80
	fps := PositionFingerprints(target, 3)
	if len(fps) != 3 {
		t.Fatalf("got %d fingerprints", len(fps))
	}
	if fps[0] != Fingerprint(target) {
		t.Fatal("first fingerprint must sit exactly at the target")
	}
	for i := 1; i < len(fps); i++ {
		if !fps[i-1].Less(fps[i]) {
			t.Fatal("fingerprints not strictly increasing")
		}
	}
}

func TestIncrementFingerprintCarries(t *testing.T) {
	var f Fingerprint
	for i := range f {
		f[i] = 0xff
	}
	if incrementFingerprint(f) != (Fingerprint{}) {
		t.Fatal("increment of all-ones should wrap to zero")
	}
	var g Fingerprint
	g[19] = 0xff
	want := Fingerprint{}
	want[18] = 1
	if incrementFingerprint(g) != want {
		t.Fatal("carry propagation broken")
	}
}

func TestExpectedKeySearchTriesScalesWithRingDensity(t *testing.T) {
	sparse := newTestNetwork(t, 33, 10)
	dense := newTestNetwork(t, 34, 200)
	var target DescriptorID
	target[0] = 0x42
	sparseTries := ExpectedKeySearchTries(sparse.Consensus(), target)
	denseTries := ExpectedKeySearchTries(dense.Consensus(), target)
	if !(denseTries > sparseTries) {
		t.Fatalf("denser ring should need more tries: dense=%g sparse=%g",
			denseTries, sparseTries)
	}
	if ExpectedKeySearchTries(nil, target) != math.Inf(1) {
		t.Fatal("nil consensus should be infinite work")
	}
}

func TestVanityAndAddressSpaceModels(t *testing.T) {
	if got := VanityPrefixTries(1); got != 32 {
		t.Fatalf("VanityPrefixTries(1) = %g, want 32", got)
	}
	if got := VanityPrefixTries(8); got != math.Pow(32, 8) {
		t.Fatalf("VanityPrefixTries(8) = %g", got)
	}
	if OnionAddressSpace() != math.Pow(32, 16) {
		t.Fatal("address space must be 32^16 (Section IV-B)")
	}
	// A million keys/sec against an 8-char prefix is still weeks of
	// work — the paper's infeasibility argument.
	d := EstimateVanitySearchDuration(8, 1e6)
	if d < 7*24*time.Hour {
		t.Fatalf("8-char vanity at 1M keys/s = %v, expected weeks", d)
	}
	if EstimateVanitySearchDuration(8, 0) <= 0 {
		t.Fatal("zero rate should saturate, not divide by zero")
	}
}
