package tor

import (
	"strings"
	"testing"
	"testing/quick"

	"onionbots/internal/sim"
)

func testIdentity(t *testing.T, seedByte byte) *Identity {
	t.Helper()
	var seed [32]byte
	for i := range seed {
		seed[i] = seedByte
	}
	return IdentityFromSeed(seed)
}

func TestOnionAddressShape(t *testing.T) {
	id := testIdentity(t, 1)
	onion := id.Onion()
	if !strings.HasSuffix(onion, ".onion") {
		t.Fatalf("onion = %q, want .onion suffix", onion)
	}
	host := strings.TrimSuffix(onion, ".onion")
	if len(host) != 16 {
		t.Fatalf("onion host %q has length %d, want 16 (80 bits base32)", host, len(host))
	}
	if host != strings.ToLower(host) {
		t.Fatalf("onion host %q is not lowercase", host)
	}
}

func TestParseOnionRoundTrip(t *testing.T) {
	err := quick.Check(func(raw [10]byte) bool {
		id := ServiceID(raw)
		parsed, err := ParseOnion(id.String())
		return err == nil && parsed == id
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseOnionRejectsGarbage(t *testing.T) {
	bad := []string{
		"", "example.com", "short.onion",
		"0123456789abcdef0.onion",                // 17 chars
		"!!!!!!!!!!!!!!!!.onion",                 // invalid base32
		"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa.onion", // 32 chars (v3-style, not v2)
	}
	for _, s := range bad {
		if _, err := ParseOnion(s); err == nil {
			t.Errorf("ParseOnion(%q) accepted invalid input", s)
		}
	}
}

func TestIdentityDeterministicFromSeed(t *testing.T) {
	a, b := testIdentity(t, 7), testIdentity(t, 7)
	if a.Onion() != b.Onion() {
		t.Fatal("same seed produced different onion addresses")
	}
	c := testIdentity(t, 8)
	if a.Onion() == c.Onion() {
		t.Fatal("different seeds produced the same onion address")
	}
}

func TestNewIdentityFromReader(t *testing.T) {
	rng := sim.NewRNG(3)
	id, err := NewIdentity(deterministicReader{rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(id.Pub) == 0 || len(id.Priv) == 0 {
		t.Fatal("empty identity")
	}
}

// deterministicReader adapts a sim RNG to io.Reader for key generation
// in tests.
type deterministicReader struct{ rng *sim.RNG }

func (r deterministicReader) Read(p []byte) (int, error) {
	copy(p, r.rng.Bytes(len(p)))
	return len(p), nil
}

func TestFingerprintOrdering(t *testing.T) {
	var lo, hi Fingerprint
	hi[0] = 1
	if !lo.Less(hi) || hi.Less(lo) || lo.Less(lo) {
		t.Fatal("Fingerprint.Less is not a strict order")
	}
}
