package tor

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCellRoundTrip(t *testing.T) {
	c := &Cell{CircID: 0xdeadbeef, Cmd: CmdData, Flags: flagMore, Payload: []byte("hello onion")}
	wire, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCell(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.CircID != c.CircID || got.Cmd != c.Cmd || got.Flags != c.Flags ||
		!bytes.Equal(got.Payload, c.Payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, c)
	}
}

func TestCellFixedSize(t *testing.T) {
	small := &Cell{CircID: 1, Cmd: CmdData, Payload: []byte("x")}
	big := &Cell{CircID: 1, Cmd: CmdData, Payload: bytes.Repeat([]byte("y"), MaxCellPayload)}
	ws, err := small.Encode()
	if err != nil {
		t.Fatal(err)
	}
	wb, err := big.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != CellSize || len(wb) != CellSize {
		t.Fatal("cells are not fixed size")
	}
}

func TestCellRejectsOversizedPayload(t *testing.T) {
	c := &Cell{Payload: make([]byte, MaxCellPayload+1)}
	if _, err := c.Encode(); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestDecodeCellRejectsBadLength(t *testing.T) {
	var wire [CellSize]byte
	wire[10] = 0xff // declared length 0xff00 > MaxCellPayload
	wire[11] = 0x00
	if _, err := DecodeCell(wire); err == nil {
		t.Fatal("bad declared length accepted")
	}
}

func TestCellPropertyRoundTrip(t *testing.T) {
	err := quick.Check(func(circ uint64, cmd byte, flags byte, payload []byte) bool {
		if len(payload) > MaxCellPayload {
			payload = payload[:MaxCellPayload]
		}
		c := &Cell{CircID: circ, Cmd: Command(cmd), Flags: flags, Payload: payload}
		wire, err := c.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeCell(wire)
		if err != nil {
			return false
		}
		return got.CircID == c.CircID && got.Cmd == c.Cmd &&
			got.Flags == c.Flags && bytes.Equal(got.Payload, c.Payload)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommandStrings(t *testing.T) {
	for cmd := CmdEstablishIntro; cmd <= CmdEnd; cmd++ {
		if s := cmd.String(); s == "" || s[0] == 'C' && len(s) > 8 && s[:8] == "Command(" {
			t.Errorf("command %d has no name", cmd)
		}
	}
	if Command(99).String() != "Command(99)" {
		t.Error("unknown command should render numerically")
	}
}
