package tor

import (
	"fmt"
	"math"
	"math/big"
	"time"
)

// This file implements the Section VI-A mitigation: an authority (or any
// adversary) injects relays whose fingerprints immediately follow a
// bot's descriptor id on the HSDir ring, becomes the bot's responsible
// directory, and suppresses the descriptor — denying access to that
// .onion address.
//
// Finding a key whose fingerprint lands in a chosen ring interval is a
// brute-force search (the paper cites [8], "Trawling for Tor hidden
// services"). The simulator separates the two concerns: the cost model
// below quantifies the search work, and InjectRelayAtFingerprint models
// a search that has already succeeded so experiments can study the
// protocol-level consequences (the 25-hour HSDir-flag delay, the need to
// re-position every descriptor period, and partial coverage).

// PositionFingerprints returns count fingerprints placed immediately at
// and after the target descriptor id on the ring, tightly packed so they
// out-compete every honest HSDir for responsibility.
func PositionFingerprints(target DescriptorID, count int) []Fingerprint {
	out := make([]Fingerprint, 0, count)
	cur := Fingerprint(target)
	for i := 0; i < count; i++ {
		out = append(out, cur)
		cur = incrementFingerprint(cur)
	}
	return out
}

// incrementFingerprint adds one to a fingerprint as a 160-bit
// big-endian integer, wrapping at the ring boundary.
func incrementFingerprint(f Fingerprint) Fingerprint {
	for i := len(f) - 1; i >= 0; i-- {
		f[i]++
		if f[i] != 0 {
			break
		}
	}
	return f
}

// OccupyDescriptorRing injects HSDirsPerReplica adversarial relays for
// each replica of the service's current descriptor ids and marks them
// malicious (they will accept but never serve the descriptor). It
// returns the injected relays. The relays still need Config.HSDirUptime
// of uptime before a consensus grants them the flag — the paper's "at
// least 25 hours before" constraint — so callers must advance time and
// republish the consensus before the denial takes effect.
func OccupyDescriptorRing(n *Network, sid ServiceID, cookie []byte) ([]*Relay, error) {
	now := n.Now()
	var injected []*Relay
	for r := 0; r < NumReplicas; r++ {
		descID := ComputeDescriptorID(sid, cookie, r, now)
		for _, fp := range PositionFingerprints(descID, HSDirsPerReplica) {
			relay, err := n.InjectRelayAtFingerprint(fp)
			if err != nil {
				return injected, fmt.Errorf("tor: occupy ring: %w", err)
			}
			relay.SetMalicious(true)
			injected = append(injected, relay)
		}
	}
	return injected, nil
}

// ExpectedKeySearchTries estimates the expected number of random keys an
// adversary must generate for one fingerprint to land in the ring
// interval [target, firstHonest) — i.e. to become the first responsible
// HSDir for the target. The estimate is 2^160 divided by the interval
// width, computed against the given consensus.
func ExpectedKeySearchTries(c *Consensus, target DescriptorID) float64 {
	if c == nil || len(c.hsdirs) == 0 {
		return math.Inf(1)
	}
	// Locate the first HSDir at or after the target.
	var first Fingerprint
	found := false
	for _, fp := range c.hsdirs {
		if !fp.Less(Fingerprint(target)) {
			first, found = fp, true
			break
		}
	}
	if !found {
		first = c.hsdirs[0] // wrap
	}
	t := new(big.Int).SetBytes(target[:])
	f := new(big.Int).SetBytes(first[:])
	ringSize := new(big.Int).Lsh(big.NewInt(1), 160)
	gap := new(big.Int).Sub(f, t)
	if gap.Sign() <= 0 {
		gap.Add(gap, ringSize)
	}
	tries := new(big.Float).Quo(new(big.Float).SetInt(ringSize), new(big.Float).SetInt(gap))
	out, _ := tries.Float64()
	return out
}

// VanityPrefixTries reports the expected number of keys to brute-force
// an onion address with a chosen prefix of prefixLen base32 characters:
// 32^prefixLen (Section IV-B's infeasibility argument for random
// probing; the paper cites ~25 days for 8 characters with 2015-era
// tooling).
func VanityPrefixTries(prefixLen int) float64 {
	return math.Pow(32, float64(prefixLen))
}

// OnionAddressSpace reports the size of the full .onion namespace,
// 32^16, which random-probing bootstrap would have to scan (Section
// IV-B).
func OnionAddressSpace() float64 { return math.Pow(32, 16) }

// EstimateVanitySearchDuration converts a measured key-generation rate
// (keys/second) into the expected wall-clock time to find a vanity
// prefix of the given length.
func EstimateVanitySearchDuration(prefixLen int, keysPerSecond float64) time.Duration {
	if keysPerSecond <= 0 {
		return time.Duration(math.MaxInt64)
	}
	seconds := VanityPrefixTries(prefixLen) / keysPerSecond
	if seconds > float64(math.MaxInt64)/float64(time.Second) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(seconds * float64(time.Second))
}
