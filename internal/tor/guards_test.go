package tor

import (
	"testing"
)

func TestProxyPinsEntryGuards(t *testing.T) {
	n := newTestNetwork(t, 95, 20)
	p := NewProxy(n)
	guards := p.Guards()
	if len(guards) != numGuards {
		t.Fatalf("guards = %d, want %d", len(guards), numGuards)
	}
	// The guard set is stable across calls.
	again := p.Guards()
	for i := range guards {
		if guards[i] != again[i] {
			t.Fatal("guard set changed without churn")
		}
	}
	// Every circuit this proxy builds enters through one of its guards.
	server := NewProxy(n)
	hs, err := server.Host(testIdentity(t, 50), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	guardSet := map[Fingerprint]struct{}{}
	for _, g := range guards {
		guardSet[g] = struct{}{}
	}
	for i := 0; i < 5; i++ {
		conn, err := p.Dial(hs.Onion())
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}
	// Inspect the proxy's remaining circuits' first hop.
	for _, oc := range p.circuits {
		if _, ok := guardSet[oc.path[0].Fingerprint()]; !ok {
			t.Fatalf("circuit entered via non-guard %s", oc.path[0].Fingerprint())
		}
	}
}

func TestGuardReplacedAfterDeath(t *testing.T) {
	n := newTestNetwork(t, 96, 20)
	p := NewProxy(n)
	guards := p.Guards()
	n.RemoveRelay(guards[0])
	replacement := p.Guards()
	if len(replacement) != numGuards {
		t.Fatalf("guards = %d after churn, want %d", len(replacement), numGuards)
	}
	for _, g := range replacement {
		if g == guards[0] {
			t.Fatal("dead guard still pinned")
		}
		if n.Relay(g) == nil {
			t.Fatal("replacement guard is dead")
		}
	}
}

func TestDistinctProxiesUseDistinctGuards(t *testing.T) {
	// With 40 relays, two proxies picking 3 guards each should (for
	// this seed) not share the full set — the point of guards is
	// per-client pinning, not a global choice.
	n := newTestNetwork(t, 97, 40)
	a := NewProxy(n).Guards()
	b := NewProxy(n).Guards()
	same := 0
	for _, ga := range a {
		for _, gb := range b {
			if ga == gb {
				same++
			}
		}
	}
	if same == numGuards {
		t.Fatal("two proxies picked identical guard sets")
	}
}
