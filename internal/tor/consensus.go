package tor

import (
	"sort"
	"time"

	"onionbots/internal/sim"
)

// RelayInfo is one consensus line: a relay fingerprint and its flags.
type RelayInfo struct {
	FP    Fingerprint
	HSDir bool
}

// Consensus is the hourly snapshot of the relay list, sorted by
// fingerprint. Clients and services resolve HSDir responsibility against
// the consensus, never against live relay state, as in Tor.
type Consensus struct {
	PublishedAt time.Time
	Relays      []RelayInfo // sorted by fingerprint
	hsdirs      []Fingerprint
}

func newConsensus(at time.Time, infos []RelayInfo) *Consensus {
	sort.Slice(infos, func(i, j int) bool { return infos[i].FP.Less(infos[j].FP) })
	c := &Consensus{
		PublishedAt: at,
		Relays:      infos,
	}
	for _, ri := range infos {
		if ri.HSDir {
			c.hsdirs = append(c.hsdirs, ri.FP)
		}
	}
	return c
}

// NumRelays reports the consensus size.
func (c *Consensus) NumRelays() int { return len(c.Relays) }

// NumHSDirs reports how many relays currently hold the HSDir flag.
func (c *Consensus) NumHSDirs() int { return len(c.hsdirs) }

// HSDirs returns the HSDir ring: every flagged fingerprint in ring
// (fingerprint-sorted) order. Fault processes walk it to model
// correlated outages over contiguous ring segments.
func (c *Consensus) HSDirs() []Fingerprint {
	return append([]Fingerprint(nil), c.hsdirs...)
}

// IsHSDir reports whether fp holds the HSDir flag. The hsdirs slice is
// already fingerprint-sorted for ring lookups, so membership is a
// binary search — no per-consensus set to build or rehash.
func (c *Consensus) IsHSDir(fp Fingerprint) bool {
	i := sort.Search(len(c.hsdirs), func(i int) bool { return !c.hsdirs[i].Less(fp) })
	return i < len(c.hsdirs) && c.hsdirs[i] == fp
}

// ResponsibleHSDirs returns the HSDirsPerReplica directory fingerprints
// responsible for a descriptor id: the consecutive HSDirs at and after
// the id's ring position, wrapping around — Figure 2 of the paper. The
// result is empty when the consensus has no HSDirs.
func (c *Consensus) ResponsibleHSDirs(id DescriptorID) []Fingerprint {
	if len(c.hsdirs) == 0 {
		return nil
	}
	// First HSDir whose fingerprint is >= the descriptor id, wrapping to
	// index 0 past the end of the ring.
	start := sort.Search(len(c.hsdirs), func(i int) bool {
		return !c.hsdirs[i].Less(fingerprintFromDescID(id))
	})
	n := HSDirsPerReplica
	if n > len(c.hsdirs) {
		n = len(c.hsdirs)
	}
	out := make([]Fingerprint, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.hsdirs[(start+i)%len(c.hsdirs)])
	}
	return out
}

// fingerprintFromDescID reinterprets a descriptor id as a ring position.
func fingerprintFromDescID(id DescriptorID) Fingerprint {
	return Fingerprint(id)
}

// PickRelays selects count distinct relays uniformly at random,
// excluding the given fingerprints. It returns fewer than count if the
// consensus is too small.
func (c *Consensus) PickRelays(rng *sim.RNG, count int, exclude map[Fingerprint]struct{}) []Fingerprint {
	n := len(c.Relays)
	if count <= 0 || n == 0 {
		return nil
	}
	// Small draws — entry guards, circuit middles, introduction points —
	// rejection-sample distinct indices in O(count) expected time. The
	// former copy-and-shuffle of the whole relay list made every circuit
	// build linear in the consensus, which dominated protocol-scale
	// joins. The 4× headroom keeps the expected attempt count low even
	// when the (always small) exclude set eats a few draws.
	if count*4 <= n {
		out := make([]Fingerprint, 0, count)
		seen := make(map[int]struct{}, count+len(exclude))
		for attempts := 0; len(out) < count && attempts < 8*n; attempts++ {
			i := rng.Intn(n)
			if _, dup := seen[i]; dup {
				continue
			}
			seen[i] = struct{}{}
			fp := c.Relays[i].FP
			if _, skip := exclude[fp]; skip {
				continue
			}
			out = append(out, fp)
		}
		if len(out) == count {
			return out
		}
		// Pathologically large exclude set: fall through and draw
		// exhaustively.
	}
	pool := make([]Fingerprint, 0, n)
	for _, ri := range c.Relays {
		if _, skip := exclude[ri.FP]; skip {
			continue
		}
		pool = append(pool, ri.FP)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if count < len(pool) {
		pool = pool[:count]
	}
	return pool
}
