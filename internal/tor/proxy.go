package tor

import (
	"errors"
	"fmt"
	"time"

	"onionbots/internal/sim"
)

// Dial and hosting errors.
var (
	ErrNoDescriptor  = errors.New("tor: no descriptor available")
	ErrDialFailed    = errors.New("tor: rendezvous failed")
	ErrIntroFailed   = errors.New("tor: introduction failed")
	ErrConnClosed    = errors.New("tor: connection closed")
	ErrServiceExists = errors.New("tor: service already hosted on this proxy")
	ErrStopped       = errors.New("tor: hidden service stopped")
)

// circuitPurpose tags what an origin circuit is for.
type circuitPurpose int

const (
	purposeHSIntro circuitPurpose = iota + 1
	purposeClientIntro
	purposeClientRend
	purposeServiceRend
)

// hopCrypto is the origin's mirror of one hop's stream pair.
type hopCrypto struct {
	fwd, bwd ctrStream
}

// originCirc is the proxy-side state of a circuit this proxy built.
type originCirc struct {
	id      uint64
	path    []*Relay
	hops    []hopCrypto // mirrors of each hop's forward/backward streams
	purpose circuitPurpose
	hs      *HiddenService // for purposeHSIntro
	conn    *Conn          // for rendezvous purposes
	ready   bool           // client rend: RENDEZVOUS2 received
	failed  bool           // END received
	frag    []byte         // DATA fragment reassembly buffer
}

// OnionProxy is a participant's onion proxy (OP): it builds circuits,
// hosts hidden services, and dials .onion addresses. One proxy per
// simulated host. Like Tor, each proxy pins a small set of entry
// guards and builds every circuit through one of them.
type OnionProxy struct {
	net      *Network
	circuits map[uint64]*originCirc
	services map[ServiceID]*HiddenService
	guards   []Fingerprint
	// guardEpoch is the relay-membership epoch the guard set was last
	// validated against; while it matches the network's, every guard is
	// known alive and refreshGuards returns immediately.
	guardEpoch uint64
	// descCache holds descriptors this proxy has already fetched and
	// signature-verified, keyed by service. See fetchDescriptor.
	descCache map[ServiceID]*descCacheEntry

	// Retry is the proxy's dial retry policy, honored by DialAsync. The
	// zero value (no retries) keeps the proxy byte-identical to one
	// predating the fault plane.
	Retry RetryPolicy
	// guardsDirty forces the next refreshGuards to re-validate the set
	// even when the relay-membership epoch is unchanged; dial failures
	// set it so a broken-but-live-looking guard choice is revisited.
	guardsDirty bool
	// replicaOffset rotates which descriptor replica fetchDescriptor
	// tries first; afterDialFailure bumps it so a retry prefers the
	// other replica's directory set.
	replicaOffset int
}

// descCacheEntry is one verified descriptor retained by a proxy.
type descCacheEntry struct {
	desc   *Descriptor
	period uint64 // TimePeriod the descriptor ids were computed under
}

// numGuards is the entry-guard set size, as in Tor's classic default.
const numGuards = 3

// Guards returns the proxy's current entry guards (selecting them on
// first use).
func (p *OnionProxy) Guards() []Fingerprint {
	p.refreshGuards()
	return append([]Fingerprint(nil), p.guards...)
}

// refreshGuards drops dead guards and tops the set back up from the
// consensus. Liveness only changes when the relay population does, so
// the scan is skipped entirely while the membership epoch is unchanged
// and the set is full — every circuit build otherwise re-probes the
// relay table per guard.
func (p *OnionProxy) refreshGuards() {
	if !p.guardsDirty && p.guardEpoch == p.net.relayEpoch && len(p.guards) >= numGuards {
		return
	}
	p.guardsDirty = false
	alive := p.guards[:0]
	for _, g := range p.guards {
		if p.net.Relay(g) != nil {
			alive = append(alive, g)
		}
	}
	p.guards = alive
	p.guardEpoch = p.net.relayEpoch
	if len(p.guards) >= numGuards {
		return
	}
	c := p.net.Consensus()
	if c == nil {
		return
	}
	exclude := map[Fingerprint]struct{}{}
	for _, g := range p.guards {
		exclude[g] = struct{}{}
	}
	for _, fp := range c.PickRelays(p.net.rng, numGuards-len(p.guards), exclude) {
		p.guards = append(p.guards, fp)
	}
}

// pickPath selects a circuit path entering through one of the proxy's
// guards and ending at terminal (zero-valued terminal means "any").
func (p *OnionProxy) pickPath(terminal Fingerprint) ([]*Relay, error) {
	c := p.net.Consensus()
	if c == nil {
		return nil, ErrNoConsensus
	}
	p.refreshGuards()
	if len(p.guards) == 0 {
		return nil, ErrNotEnoughRelays
	}
	// A guard that is also the terminal would shorten the path; exclude
	// it from the entry choice when possible.
	candidates := make([]Fingerprint, 0, len(p.guards))
	for _, g := range p.guards {
		if g != terminal {
			candidates = append(candidates, g)
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("%w: all guards collide with terminal", ErrNotEnoughRelays)
	}
	guard := candidates[p.net.rng.Intn(len(candidates))]

	exclude := map[Fingerprint]struct{}{guard: {}}
	hops := p.net.cfg.PathLen - 1
	var terminalRelay *Relay
	if terminal != (Fingerprint{}) {
		terminalRelay = p.net.Relay(terminal)
		if terminalRelay == nil {
			return nil, fmt.Errorf("tor: terminal relay %s not found", terminal)
		}
		exclude[terminal] = struct{}{}
		hops--
	}
	// The consensus is a stale snapshot: a relay listed there may have
	// died since publication (mid-period crash). Dead picks are excluded
	// and resampled rather than failing the whole path — a client would
	// simply try another relay. With no dead relays the single PickRelays
	// round draws exactly what the pre-resample code drew.
	middles := make([]*Relay, 0, hops)
	for len(middles) < hops {
		picked := c.PickRelays(p.net.rng, hops-len(middles), exclude)
		if len(picked) < hops-len(middles) {
			return nil, fmt.Errorf("%w: need %d middles, consensus offers %d", ErrNotEnoughRelays, hops, len(middles)+len(picked))
		}
		for _, fp := range picked {
			exclude[fp] = struct{}{}
			if r := p.net.Relay(fp); r != nil {
				middles = append(middles, r)
			}
		}
	}
	path := make([]*Relay, 0, p.net.cfg.PathLen)
	path = append(path, p.net.Relay(guard))
	path = append(path, middles...)
	if terminalRelay != nil {
		path = append(path, terminalRelay)
	}
	if path[0] == nil {
		return nil, ErrNotEnoughRelays
	}
	return path, nil
}

// NewProxy attaches a fresh onion proxy to the network.
func NewProxy(n *Network) *OnionProxy {
	return &OnionProxy{
		net:       n,
		circuits:  make(map[uint64]*originCirc),
		services:  make(map[ServiceID]*HiddenService),
		descCache: make(map[ServiceID]*descCacheEntry),
	}
}

// Network returns the proxy's network.
func (p *OnionProxy) Network() *Network { return p.net }

// buildCircuit extends a circuit along path, installing fresh symmetric
// stream state at each hop (the completed-handshake model): a fresh
// random IV per hop and direction positions a CTR stream over the
// network's shared cell cipher, with the relay's copy and the origin's
// mirror advancing independently. No per-hop key expansion or heap
// allocation happens here; see stream.go.
func (p *OnionProxy) buildCircuit(path []*Relay, purpose circuitPurpose) *originCirc {
	p.net.nextCirc++
	id := p.net.nextCirc
	oc := &originCirc{id: id, path: path, purpose: purpose, hops: make([]hopCrypto, len(path))}
	var fwdIV, bwdIV [16]byte
	for i, r := range path {
		p.net.rng.Fill(fwdIV[:])
		p.net.rng.Fill(bwdIV[:])
		rc := &relayCirc{
			fwd: newCTRStream(p.net, &fwdIV),
			bwd: newCTRStream(p.net, &bwdIV),
		}
		if i == 0 {
			rc.origin = p
		} else {
			rc.prev = path[i-1]
		}
		if i+1 < len(path) {
			rc.next = path[i+1]
		}
		r.circuits[id] = rc
		oc.hops[i] = hopCrypto{fwd: newCTRStream(p.net, &fwdIV), bwd: newCTRStream(p.net, &bwdIV)}
	}
	p.circuits[id] = oc
	p.net.stats.CircuitsBuilt++
	return oc
}

// send originates a cell on the circuit, applying all onion layers into
// a stack scratch buffer that then flows through the whole path.
func (p *OnionProxy) send(oc *originCirc, cmd Command, flags byte, payload []byte) error {
	cell := Cell{CircID: oc.id, Cmd: cmd, Flags: flags, Payload: payload}
	wire := p.net.getWire()
	defer p.net.putWire(wire)
	if err := cell.encodeInto(wire); err != nil {
		return err
	}
	for i := len(oc.hops) - 1; i >= 0; i-- {
		oc.hops[i].fwd.xorBody(wire)
	}
	oc.path[0].receiveForward(oc.id, wire)
	return nil
}

// deliverBackward receives a backward cell addressed to this origin.
func (p *OnionProxy) deliverBackward(circID uint64, wire *[CellSize]byte) {
	oc, ok := p.circuits[circID]
	if !ok {
		return
	}
	for i := range oc.hops {
		oc.hops[i].bwd.xorBody(wire)
	}
	var cellBuf Cell
	cell := &cellBuf
	if err := decodeCellView(cell, wire); err != nil {
		return
	}
	switch {
	case cell.Cmd == CmdIntroduce2 && oc.purpose == purposeHSIntro:
		if oc.hs != nil {
			oc.hs.onIntroduce2(cell.Payload)
		}
	case cell.Cmd == CmdRendezvous2 && oc.purpose == purposeClientRend:
		oc.ready = true
	case cell.Cmd == CmdData:
		p.onData(oc, cell)
	case cell.Cmd == CmdEnd:
		oc.failed = true
		if oc.conn != nil {
			oc.conn.markClosed()
		}
		delete(p.circuits, circID)
	}
}

// onData reassembles message fragments and hands complete messages to
// the circuit's connection with the end-to-end latency of the two
// joined circuits.
func (p *OnionProxy) onData(oc *originCirc, cell *Cell) {
	oc.frag = append(oc.frag, cell.Payload...)
	if cell.Flags&flagMore != 0 {
		return
	}
	msg := oc.frag
	oc.frag = nil
	conn := oc.conn
	if conn == nil {
		return
	}
	delay := p.net.cfg.HopLatency * time.Duration(2*p.net.cfg.PathLen)
	p.net.sched.After(delay, func() { conn.deliver(msg) })
}

// circuitDestroyed handles a link-level circuit destruction (a relay on
// the path died).
func (p *OnionProxy) circuitDestroyed(circID uint64) {
	oc, ok := p.circuits[circID]
	if !ok {
		return
	}
	oc.failed = true
	if oc.conn != nil {
		oc.conn.markClosed()
	}
	delete(p.circuits, circID)
}

// teardown sends END up the circuit and drops local state.
func (p *OnionProxy) teardown(oc *originCirc) {
	if _, live := p.circuits[oc.id]; !live {
		return
	}
	delete(p.circuits, oc.id)
	end := Cell{CircID: oc.id, Cmd: CmdEnd}
	wire := p.net.getWire()
	defer p.net.putWire(wire)
	if err := end.encodeInto(wire); err == nil {
		oc.path[0].teardownForward(oc.id, wire)
	}
}

// Shutdown closes every circuit and stops every service on this proxy —
// the "host taken down" event.
func (p *OnionProxy) Shutdown() {
	for _, hs := range p.services {
		hs.Stop()
	}
	ids := make([]uint64, 0, len(p.circuits))
	for id := range p.circuits {
		ids = append(ids, id)
	}
	// Teardown emits relay-side effects (conn closes, cell traffic), so
	// the order must not leak map iteration order into the run.
	sortUint64(ids)
	for _, id := range ids {
		if oc, ok := p.circuits[id]; ok {
			if oc.conn != nil {
				oc.conn.markClosed()
			}
			p.teardown(oc)
		}
	}
}

// Conn is an established end-to-end hidden-service connection. The
// server side never learns who the client is; the client side knows the
// onion address it dialed.
type Conn struct {
	op     *OnionProxy
	circ   *originCirc
	remote string // dialed .onion (client side only)
	local  string // serving .onion (server side only)
	queue  [][]byte
	onMsg  func([]byte)
	closed bool
}

// RemoteOnion reports the dialed address ("" on the server side — the
// mutual-anonymity property the paper builds on).
func (c *Conn) RemoteOnion() string { return c.remote }

// LocalOnion reports the serving address ("" on the client side).
func (c *Conn) LocalOnion() string { return c.local }

// Closed reports whether the connection is closed.
func (c *Conn) Closed() bool { return c.closed }

// Send transmits msg, fragmenting it into fixed-size cells.
func (c *Conn) Send(msg []byte) error {
	if c.closed {
		return ErrConnClosed
	}
	for off := 0; ; off += MaxCellPayload {
		end := off + MaxCellPayload
		var flags byte
		if end < len(msg) {
			flags = flagMore
		} else {
			end = len(msg)
		}
		if err := c.op.send(c.circ, CmdData, flags, msg[off:end]); err != nil {
			return err
		}
		if flags&flagMore == 0 {
			return nil
		}
	}
}

// Recv pops the next queued message; ok is false when nothing is
// queued. Connections with a handler installed never queue.
func (c *Conn) Recv() ([]byte, bool) {
	if len(c.queue) == 0 {
		return nil, false
	}
	msg := c.queue[0]
	c.queue = c.queue[1:]
	return msg, true
}

// SetHandler installs fn as the synchronous delivery callback, first
// draining any queued messages into it.
func (c *Conn) SetHandler(fn func([]byte)) {
	for _, m := range c.queue {
		fn(m)
	}
	c.queue = nil
	c.onMsg = fn
}

// Close tears down the connection end to end.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.op.teardown(c.circ)
}

func (c *Conn) deliver(msg []byte) {
	if c.closed {
		return
	}
	if c.onMsg != nil {
		c.onMsg(msg)
		return
	}
	c.queue = append(c.queue, msg)
}

func (c *Conn) markClosed() { c.closed = true }

// HiddenService is the server side of a hosted .onion service.
type HiddenService struct {
	op          *OnionProxy
	identity    *Identity
	handler     func(*Conn)
	cookie      []byte
	introPoints []Fingerprint
	introCircs  []uint64
	stopped     bool
	lastPublish time.Time
	lastPeriod  uint64
	// lastDirs is the concatenated responsible-HSDir set (all replicas,
	// ring order) at the last publish; maybeRepublish re-publishes when
	// the current consensus resolves to a different set, which is how a
	// service heals from directory loss (HSDir outage waves) without any
	// extra randomness.
	lastDirs []Fingerprint
	// introPayload is the constant ESTABLISH_INTRO cell body
	// (pub || sig over the intro binding), signed once at Host time;
	// Ed25519 is deterministic so re-signing per repair tick produced
	// these exact bytes anyway.
	introPayload []byte
}

// Host publishes a hidden service for identity on this proxy. handler
// is invoked synchronously for each established inbound connection.
func (p *OnionProxy) Host(identity *Identity, handler func(*Conn)) (*HiddenService, error) {
	sid := identity.ServiceID()
	if _, dup := p.services[sid]; dup {
		return nil, fmt.Errorf("%w: %s", ErrServiceExists, sid)
	}
	c := p.net.Consensus()
	if c == nil {
		return nil, ErrNoConsensus
	}
	hs := &HiddenService{op: p, identity: identity, handler: handler}

	// Intro points come from the consensus, which may list relays that
	// died since publication; resample past the corpses instead of
	// establishing a circuit to one (or hard-failing the host call).
	var ips []Fingerprint
	ipExclude := map[Fingerprint]struct{}{}
	for len(ips) < p.net.cfg.IntroPoints {
		need := p.net.cfg.IntroPoints - len(ips)
		picked := c.PickRelays(p.net.rng, need, ipExclude)
		for _, fp := range picked {
			ipExclude[fp] = struct{}{}
			if p.net.Relay(fp) != nil {
				ips = append(ips, fp)
			}
		}
		if len(picked) < need {
			break // consensus exhausted; host with what we have
		}
	}
	if len(ips) == 0 {
		return nil, ErrNotEnoughRelays
	}
	// The ESTABLISH_INTRO body is cached on the identity (Ed25519 is
	// deterministic), so a pool-warmed identity hosts without paying the
	// signature here.
	payload := identity.IntroPayload()
	hs.introPayload = payload
	for _, ip := range ips {
		path, err := p.pickPath(ip)
		if err != nil {
			return nil, fmt.Errorf("tor: intro circuit: %w", err)
		}
		oc := p.buildCircuit(path, purposeHSIntro)
		oc.hs = hs
		if err := p.send(oc, CmdEstablishIntro, 0, payload); err != nil {
			return nil, err
		}
		hs.introPoints = append(hs.introPoints, ip)
		hs.introCircs = append(hs.introCircs, oc.id)
	}
	if err := hs.publishDescriptors(); err != nil {
		return nil, err
	}
	p.services[sid] = hs
	// Batched: every service hosted at the same instant shares one
	// republish/repair wheel event per consensus interval.
	p.net.sched.EveryBatched(p.net.cfg.ConsensusInterval, func() bool {
		if hs.stopped {
			return false
		}
		hs.maybeRepublish()
		return true
	})
	return hs, nil
}

// Onion reports the service hostname.
func (hs *HiddenService) Onion() string { return hs.identity.Onion() }

// IntroPoints returns the service's current introduction relays.
func (hs *HiddenService) IntroPoints() []Fingerprint {
	return append([]Fingerprint(nil), hs.introPoints...)
}

// Stop withdraws the service: introduction circuits are torn down so
// new dials fail immediately; established connections survive, as in
// Tor.
func (hs *HiddenService) Stop() {
	if hs.stopped {
		return
	}
	hs.stopped = true
	for _, id := range hs.introCircs {
		if oc, ok := hs.op.circuits[id]; ok {
			hs.op.teardown(oc)
		}
	}
	delete(hs.op.services, hs.identity.ServiceID())
}

// publishDescriptors computes per-replica descriptor ids and uploads to
// every responsible HSDir.
func (hs *HiddenService) publishDescriptors() error {
	now := hs.op.net.Now()
	c := hs.op.net.Consensus()
	if c == nil {
		return ErrNoConsensus
	}
	sid := hs.identity.ServiceID()
	stored := 0
	// One signed document per publication: the replicas differ only in
	// the ring position they are uploaded to (and the Replica location
	// tag), so the service signs once and primes the network's verify
	// memo — directories and clients then check bytes that are valid by
	// construction without re-running the scalar multiplications.
	doc := Descriptor{
		Pub:         hs.identity.Pub,
		IntroPoints: hs.IntroPoints(),
		TimePeriod:  TimePeriod(now, sid),
		PublishedAt: now,
	}
	doc.Sign(hs.identity.Priv)
	hs.op.net.noteSignedDescriptor(hs.identity.Priv, &doc)
	for r := 0; r < NumReplicas; r++ {
		descID := ComputeDescriptorID(sid, hs.cookie, r, now)
		d := new(Descriptor)
		*d = doc
		d.Replica = r
		for _, fp := range c.ResponsibleHSDirs(descID) {
			relay := hs.op.net.Relay(fp)
			if relay == nil {
				continue
			}
			// The replica copy is ours and immutable from here on; the
			// responsible directories share it without re-cloning.
			if err := relay.storeDescriptorOwned(descID, d); err == nil {
				stored++
			}
		}
	}
	if stored == 0 {
		return fmt.Errorf("tor: could not store any descriptor for %s", sid)
	}
	hs.lastPublish = now
	hs.lastPeriod = TimePeriod(now, sid)
	hs.lastDirs = hs.responsibleDirs(c, now)
	return nil
}

// responsibleDirs resolves the service's full responsible-HSDir set
// (every replica, ring order) against a consensus. A pure function of
// (consensus, service, time) — no randomness — so comparing snapshots
// across consensuses is determinism-safe.
func (hs *HiddenService) responsibleDirs(c *Consensus, now time.Time) []Fingerprint {
	sid := hs.identity.ServiceID()
	out := make([]Fingerprint, 0, NumReplicas*HSDirsPerReplica)
	for r := 0; r < NumReplicas; r++ {
		descID := ComputeDescriptorID(sid, hs.cookie, r, now)
		out = append(out, c.ResponsibleHSDirs(descID)...)
	}
	return out
}

func equalFingerprints(a, b []Fingerprint) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// maybeRepublish repairs introduction circuits lost to relay churn and
// refreshes descriptors when the time-period rolled, the previous
// upload is approaching its TTL, or the responsible-HSDir set moved
// under the descriptor — directories died (or joined) and the copies
// uploaded last time are no longer where clients will look. The last
// case is what lets a hidden service survive an HSDir outage wave: the
// next consensus drops the dead directories, the ring positions
// re-resolve to surviving relays, and the service re-uploads there.
func (hs *HiddenService) maybeRepublish() {
	now := hs.op.net.Now()
	sid := hs.identity.ServiceID()
	introChanged := hs.repairIntroCircuits()
	// A responsible-set change within the publication's own time period
	// means directories died or joined under the descriptor — the repair
	// case. Across period boundaries the set moves by design (the
	// descriptor ID rotates) and the period condition below already
	// republishes, so that is not counted as a repair.
	dirsMoved := false
	if c := hs.op.net.Consensus(); c != nil && hs.lastDirs != nil && TimePeriod(now, sid) == hs.lastPeriod {
		dirsMoved = !equalFingerprints(hs.responsibleDirs(c, now), hs.lastDirs)
	}
	if dirsMoved {
		hs.op.net.stats.PublishRepairs++
	}
	if introChanged || dirsMoved || TimePeriod(now, sid) != hs.lastPeriod ||
		now.Sub(hs.lastPublish) > hs.op.net.cfg.DescriptorTTL/2 {
		// Best effort, as in Tor: a failed republish retries next tick.
		_ = hs.publishDescriptors()
	}
}

// repairIntroCircuits replaces introduction circuits that died (the
// intro relay was removed or the circuit was destroyed), reporting
// whether the intro-point set changed.
func (hs *HiddenService) repairIntroCircuits() bool {
	changed := false
	exclude := map[Fingerprint]struct{}{}
	for _, ip := range hs.introPoints {
		exclude[ip] = struct{}{}
	}
	payload := hs.introPayload
	for i := 0; i < len(hs.introCircs); i++ {
		if _, alive := hs.op.circuits[hs.introCircs[i]]; alive {
			continue
		}
		changed = true
		c := hs.op.net.Consensus()
		if c == nil {
			continue
		}
		var ip Fingerprint
		for {
			picked := c.PickRelays(hs.op.net.rng, 1, exclude)
			if len(picked) == 0 {
				break
			}
			exclude[picked[0]] = struct{}{}
			if hs.op.net.Relay(picked[0]) != nil {
				ip = picked[0]
				break
			}
		}
		if ip == (Fingerprint{}) {
			continue
		}
		path, err := hs.op.pickPath(ip)
		if err != nil {
			continue
		}
		oc := hs.op.buildCircuit(path, purposeHSIntro)
		oc.hs = hs
		if err := hs.op.send(oc, CmdEstablishIntro, 0, payload); err != nil {
			continue
		}
		hs.introPoints[i] = ip
		hs.introCircs[i] = oc.id
	}
	return changed
}

// onIntroduce2 completes the service side of a rendezvous: build a
// circuit to the client's rendezvous point and join.
func (hs *HiddenService) onIntroduce2(p []byte) {
	if hs.stopped || len(p) != 20+cookieSize {
		return
	}
	var rp Fingerprint
	copy(rp[:], p[:20])
	cookie := p[20:]
	path, err := hs.op.pickPath(rp)
	if err != nil {
		return
	}
	oc := hs.op.buildCircuit(path, purposeServiceRend)
	conn := &Conn{op: hs.op, circ: oc, local: hs.Onion()}
	oc.conn = conn
	if err := hs.op.send(oc, CmdRendezvous1, 0, cookie); err != nil {
		return
	}
	if oc.failed {
		return // rendezvous point refused (stale cookie)
	}
	if hs.handler != nil {
		hs.handler(conn)
	}
}

// Dial connects to a hidden service by onion address, running the full
// descriptor-fetch / rendezvous / introduction protocol of Figure 1.
// Every failed dial is counted in NetworkStats.DialFailures; DialAsync
// layers the retry policy on top.
func (p *OnionProxy) Dial(onion string) (*Conn, error) {
	conn, err := p.dialOnce(onion)
	if err != nil {
		p.net.stats.DialFailures++
	}
	return conn, err
}

func (p *OnionProxy) dialOnce(onion string) (*Conn, error) {
	sid, err := ParseOnion(onion)
	if err != nil {
		return nil, err
	}
	c := p.net.Consensus()
	if c == nil {
		return nil, ErrNoConsensus
	}
	desc, err := p.fetchDescriptor(c, sid)
	if err != nil {
		return nil, err
	}

	// Establish the rendezvous point.
	cookie := p.net.rng.Bytes(cookieSize)
	rpPath, err := p.pickPath(Fingerprint{})
	if err != nil {
		return nil, err
	}
	rendCirc := p.buildCircuit(rpPath, purposeClientRend)
	conn := &Conn{op: p, circ: rendCirc, remote: onion}
	rendCirc.conn = conn
	if err := p.send(rendCirc, CmdEstablishRendezvous, 0, cookie); err != nil {
		return nil, err
	}
	rpFP := rpPath[len(rpPath)-1].Fingerprint()

	// Introduce ourselves via one of the service's intro points.
	intro := sim.Choice(p.net.rng, desc.IntroPoints)
	introPath, err := p.pickPath(intro)
	if err != nil {
		p.teardown(rendCirc)
		return nil, err
	}
	introCirc := p.buildCircuit(introPath, purposeClientIntro)
	payload := make([]byte, 0, 10+20+cookieSize)
	payload = append(payload, sid[:]...)
	payload = append(payload, rpFP[:]...)
	payload = append(payload, cookie...)
	if p.net.introFaultHit() {
		// The fault plane ate the INTRODUCE1 cell: the intro circuit
		// stalls exactly as if the intro point had silently dropped it.
		introCirc.failed = true
	} else if err := p.send(introCirc, CmdIntroduce1, 0, payload); err != nil {
		p.teardown(rendCirc)
		return nil, err
	}
	introFailed := introCirc.failed
	p.teardown(introCirc) // one-shot, as in Tor

	if introFailed {
		p.teardown(rendCirc)
		p.forgetDescriptor(sid)
		return nil, fmt.Errorf("%w: service %s not introducing", ErrIntroFailed, sid)
	}
	if !rendCirc.ready {
		p.teardown(rendCirc)
		p.forgetDescriptor(sid)
		return nil, fmt.Errorf("%w: no RENDEZVOUS2 for %s", ErrDialFailed, sid)
	}
	return conn, nil
}

// fetchDescriptor resolves a service descriptor, consulting the proxy's
// verified-descriptor cache before hitting HSDirs. The Ed25519 signature
// check dominated the dial path (~31% of campaign CPU went to
// re-verifying the same descriptor on every dial), so each descriptor is
// verified once when first fetched; later dials reuse it after a cheap
// coherence probe (cachedDescriptorValid) proving a fresh fetch would
// return byte-identical bytes. Entries invalidate on descriptor-id
// rollover (TimePeriod change), republish (the stored signature no
// longer matches), directory churn, and dial failure.
func (p *OnionProxy) fetchDescriptor(c *Consensus, sid ServiceID) (*Descriptor, error) {
	now := p.net.Now()
	if e, ok := p.descCache[sid]; ok {
		if p.cachedDescriptorValid(c, sid, e, now) {
			return e.desc, nil
		}
		delete(p.descCache, sid)
	}
	for i := 0; i < NumReplicas; i++ {
		// replicaOffset rotates the fetch order after dial failures so a
		// retry consults the other replica's directories first; it stays 0
		// (replica order 0, 1, ...) until a failure bumps it.
		r := (i + p.replicaOffset) % NumReplicas
		descID := ComputeDescriptorID(sid, nil, r, now)
		for _, fp := range c.ResponsibleHSDirs(descID) {
			relay := p.net.Relay(fp)
			if relay == nil {
				continue
			}
			d := relay.FetchDescriptor(descID)
			if d == nil {
				continue
			}
			if err := p.net.verifyDescriptor(sid, d); err != nil {
				continue
			}
			if len(d.IntroPoints) == 0 {
				continue
			}
			p.descCache[sid] = &descCacheEntry{desc: d, period: TimePeriod(now, sid)}
			return d, nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNoDescriptor, sid)
}

// cachedDescriptorValid reports whether dialing from the cached entry is
// indistinguishable from a fresh fetch: the descriptor-id ring position
// still resolves to the same time period and at least one responsible
// HSDir would still serve the byte-identical descriptor. Because HSDir
// stores only change when a service republishes — which re-signs with a
// fresh PublishedAt — signature equality at any responsible directory
// proves a fresh fetch would return exactly the cached bytes.
func (p *OnionProxy) cachedDescriptorValid(c *Consensus, sid ServiceID, e *descCacheEntry, now time.Time) bool {
	if TimePeriod(now, sid) != e.period {
		return false // descriptor ids rolled over
	}
	descID := ComputeDescriptorID(sid, nil, e.desc.Replica, now)
	for _, fp := range c.ResponsibleHSDirs(descID) {
		if relay := p.net.Relay(fp); relay != nil && relay.wouldServe(descID, e.desc) {
			return true
		}
	}
	return false
}

// forgetDescriptor drops a cached descriptor after a dial failure so the
// next attempt re-fetches and re-verifies from the HSDirs.
func (p *OnionProxy) forgetDescriptor(sid ServiceID) {
	delete(p.descCache, sid)
}
