package tor

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha1"
	"encoding/base32"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
)

// Fingerprint is a relay or service identity digest: SHA-1 of the public
// key, as in Tor. Fingerprints order the HSDir ring.
type Fingerprint [20]byte

// FingerprintOf digests an Ed25519 public key.
func FingerprintOf(pub ed25519.PublicKey) Fingerprint {
	return Fingerprint(sha1.Sum(pub))
}

// ServiceIDOf derives the 80-bit hidden-service identifier for a
// public key — the single definition of the ID scheme; identity,
// descriptor verification, and the signing memos all route through it.
func ServiceIDOf(pub ed25519.PublicKey) ServiceID {
	var id ServiceID
	sum := sha1.Sum(pub)
	copy(id[:], sum[:10])
	return id
}

// Less orders fingerprints lexicographically (ring order).
func (f Fingerprint) Less(other Fingerprint) bool {
	return bytes.Compare(f[:], other[:]) < 0
}

// String renders a short hex prefix for logs and errors.
func (f Fingerprint) String() string {
	return hex.EncodeToString(f[:4])
}

// ServiceID is the hidden-service identifier: the first 10 bytes
// (80 bits) of the SHA-1 digest of the service's public key, exactly as
// the paper defines it.
type ServiceID [10]byte

// onionEncoding is unpadded lowercase base32; 10 bytes encode to exactly
// 16 characters, the classic v2 onion hostname length.
var onionEncoding = base32.NewEncoding("abcdefghijklmnopqrstuvwxyz234567").WithPadding(base32.NoPadding)

// String renders the .onion hostname for the identifier.
func (id ServiceID) String() string {
	var buf [22]byte
	onionEncoding.Encode(buf[:16], id[:])
	copy(buf[16:], ".onion")
	return string(buf[:])
}

// ParseOnion parses a "<16 base32 chars>.onion" hostname back into a
// ServiceID.
func ParseOnion(addr string) (ServiceID, error) {
	var id ServiceID
	host, ok := strings.CutSuffix(addr, ".onion")
	if !ok {
		return id, fmt.Errorf("tor: %q is not a .onion address", addr)
	}
	// Internally generated hostnames are already lowercase; only
	// fold (and allocate) when a caller hands in mixed case.
	for i := 0; i < len(host); i++ {
		if host[i] >= 'A' && host[i] <= 'Z' {
			host = strings.ToLower(host)
			break
		}
	}
	raw, err := onionEncoding.DecodeString(host)
	if err != nil {
		return id, fmt.Errorf("tor: bad onion hostname %q: %w", addr, err)
	}
	if len(raw) != len(id) {
		return id, fmt.Errorf("tor: onion hostname %q decodes to %d bytes, want %d", addr, len(raw), len(id))
	}
	copy(id[:], raw)
	return id, nil
}

// Identity is a hidden-service (or relay) keypair plus its derived
// names.
type Identity struct {
	Priv ed25519.PrivateKey
	Pub  ed25519.PublicKey

	onion string // lazily cached hostname (Pub is immutable in practice)
	// introPayload lazily caches the constant ESTABLISH_INTRO body
	// (pub || sig over the intro binding). Ed25519 is deterministic, so
	// signing once per identity is exact; identity pools warm the cache
	// ahead of time so hosting pays no signature at join.
	introPayload []byte
}

// NewIdentity generates an identity from the given entropy source. A
// deterministic reader yields a deterministic identity.
func NewIdentity(random io.Reader) (*Identity, error) {
	//onionlint:allow detrand -- entropy injection point: every production caller hands in a seeded botcrypto.DRBG; byte-exactness is the caller's contract
	pub, priv, err := ed25519.GenerateKey(random)
	if err != nil {
		return nil, fmt.Errorf("tor: generate identity: %w", err)
	}
	return &Identity{Priv: priv, Pub: pub}, nil
}

// IdentityFromSeed derives an identity from a 32-byte seed. This is the
// primitive behind the paper's address-rotation scheme: bot and
// botmaster derive the same seed, hence the same identity and the same
// .onion address.
func IdentityFromSeed(seed [32]byte) *Identity {
	priv := ed25519.NewKeyFromSeed(seed[:])
	return &Identity{Priv: priv, Pub: priv.Public().(ed25519.PublicKey)}
}

// ServiceID returns the 80-bit identifier derived from the public key.
func (id *Identity) ServiceID() ServiceID { return ServiceIDOf(id.Pub) }

// Onion returns the .onion hostname, computing it once.
func (id *Identity) Onion() string {
	if id.onion == "" {
		id.onion = id.ServiceID().String()
	}
	return id.onion
}

// Fingerprint returns the full 20-byte SHA-1 digest of the public key.
func (id *Identity) Fingerprint() Fingerprint { return FingerprintOf(id.Pub) }

// IntroPayload returns the identity's constant ESTABLISH_INTRO cell body
// (pub || sig over the intro binding), signing it on first use. Every
// introduction point the identity ever recruits receives these exact
// bytes, so one signature per identity suffices.
func (id *Identity) IntroPayload() []byte {
	if id.introPayload == nil {
		sig := ed25519.Sign(id.Priv, introBinding(id.Pub))
		id.introPayload = append(append(make([]byte, 0, len(id.Pub)+len(sig)), id.Pub...), sig...)
	}
	return id.introPayload
}
