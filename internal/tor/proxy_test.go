package tor

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestHiddenServiceEndToEnd(t *testing.T) {
	n := newTestNetwork(t, 10, 15)

	server := NewProxy(n)
	var serverConn *Conn
	id := testIdentity(t, 1)
	hs, err := server.Host(id, func(c *Conn) { serverConn = c })
	if err != nil {
		t.Fatal(err)
	}

	client := NewProxy(n)
	conn, err := client.Dial(hs.Onion())
	if err != nil {
		t.Fatal(err)
	}
	if serverConn == nil {
		t.Fatal("service handler never invoked")
	}

	// Mutual anonymity: the server must not learn anything about the
	// client; the client knows only the onion address it dialed.
	if serverConn.RemoteOnion() != "" {
		t.Fatalf("server learned client identity %q", serverConn.RemoteOnion())
	}
	if conn.RemoteOnion() != hs.Onion() {
		t.Fatalf("client remote = %q, want %q", conn.RemoteOnion(), hs.Onion())
	}
	if serverConn.LocalOnion() != hs.Onion() {
		t.Fatalf("server local = %q, want %q", serverConn.LocalOnion(), hs.Onion())
	}

	// Client -> server.
	if err := conn.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	n.Scheduler().RunFor(time.Second)
	got, ok := serverConn.Recv()
	if !ok || !bytes.Equal(got, []byte("ping")) {
		t.Fatalf("server received %q ok=%v, want ping", got, ok)
	}

	// Server -> client.
	if err := serverConn.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	n.Scheduler().RunFor(time.Second)
	got, ok = conn.Recv()
	if !ok || !bytes.Equal(got, []byte("pong")) {
		t.Fatalf("client received %q ok=%v, want pong", got, ok)
	}
}

func TestLargeMessageFragmentationAcrossCells(t *testing.T) {
	n := newTestNetwork(t, 11, 15)
	server := NewProxy(n)
	var serverConn *Conn
	hs, err := server.Host(testIdentity(t, 2), func(c *Conn) { serverConn = c })
	if err != nil {
		t.Fatal(err)
	}
	client := NewProxy(n)
	conn, err := client.Dial(hs.Onion())
	if err != nil {
		t.Fatal(err)
	}

	msg := make([]byte, 4*MaxCellPayload+123) // forces 5 fragments
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	if err := conn.Send(msg); err != nil {
		t.Fatal(err)
	}
	n.Scheduler().RunFor(time.Second)
	got, ok := serverConn.Recv()
	if !ok || !bytes.Equal(got, msg) {
		t.Fatalf("fragmented message corrupted (got %d bytes, ok=%v)", len(got), ok)
	}
}

func TestMessageDeliveryUsesHopLatency(t *testing.T) {
	n := newTestNetwork(t, 12, 15)
	server := NewProxy(n)
	var serverConn *Conn
	hs, err := server.Host(testIdentity(t, 3), func(c *Conn) { serverConn = c })
	if err != nil {
		t.Fatal(err)
	}
	conn, err := NewProxy(n).Dial(hs.Onion())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("timed")); err != nil {
		t.Fatal(err)
	}
	// 6 hops at 50ms each = 300ms end to end; at 200ms nothing yet.
	n.Scheduler().RunFor(200 * time.Millisecond)
	if _, ok := serverConn.Recv(); ok {
		t.Fatal("message arrived before the end-to-end latency elapsed")
	}
	n.Scheduler().RunFor(200 * time.Millisecond)
	if _, ok := serverConn.Recv(); !ok {
		t.Fatal("message never arrived")
	}
}

func TestConnHandlerDrainsQueue(t *testing.T) {
	n := newTestNetwork(t, 13, 15)
	server := NewProxy(n)
	var serverConn *Conn
	hs, err := server.Host(testIdentity(t, 4), func(c *Conn) { serverConn = c })
	if err != nil {
		t.Fatal(err)
	}
	conn, err := NewProxy(n).Dial(hs.Onion())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"a", "b", "c"} {
		if err := conn.Send([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	n.Scheduler().RunFor(time.Second)
	var got []string
	serverConn.SetHandler(func(m []byte) { got = append(got, string(m)) })
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("handler drained %v, want [a b c] in order", got)
	}
	// Subsequent messages go straight to the handler.
	if err := conn.Send([]byte("d")); err != nil {
		t.Fatal(err)
	}
	n.Scheduler().RunFor(time.Second)
	if len(got) != 4 || got[3] != "d" {
		t.Fatalf("handler missed live message: %v", got)
	}
}

func TestDialUnknownServiceFails(t *testing.T) {
	n := newTestNetwork(t, 14, 15)
	client := NewProxy(n)
	_, err := client.Dial(testIdentity(t, 99).Onion())
	if !errors.Is(err, ErrNoDescriptor) {
		t.Fatalf("dial unknown service error = %v, want ErrNoDescriptor", err)
	}
}

func TestDialStoppedServiceFails(t *testing.T) {
	n := newTestNetwork(t, 15, 15)
	server := NewProxy(n)
	hs, err := server.Host(testIdentity(t, 5), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	hs.Stop()
	// The descriptor may still be cached on HSDirs, but the intro
	// points no longer recognize the service.
	_, err = NewProxy(n).Dial(hs.Onion())
	if err == nil {
		t.Fatal("dial of stopped service succeeded")
	}
	if !errors.Is(err, ErrIntroFailed) && !errors.Is(err, ErrNoDescriptor) {
		t.Fatalf("error = %v, want intro failure or missing descriptor", err)
	}
}

func TestConnCloseTearsDownBothSides(t *testing.T) {
	n := newTestNetwork(t, 16, 15)
	server := NewProxy(n)
	var serverConn *Conn
	hs, err := server.Host(testIdentity(t, 6), func(c *Conn) { serverConn = c })
	if err != nil {
		t.Fatal(err)
	}
	conn, err := NewProxy(n).Dial(hs.Onion())
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if !conn.Closed() {
		t.Fatal("client conn not closed")
	}
	if !serverConn.Closed() {
		t.Fatal("server conn not closed after peer Close")
	}
	if err := conn.Send([]byte("x")); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("send on closed conn error = %v, want ErrConnClosed", err)
	}
}

func TestManyServicesOnOneProxy(t *testing.T) {
	// SOAP hosts many clone services on one machine; the proxy must
	// support that (IP/.onion decoupling).
	n := newTestNetwork(t, 17, 15)
	host := NewProxy(n)
	var onions []string
	for i := byte(0); i < 10; i++ {
		hs, err := host.Host(testIdentity(t, 20+i), func(*Conn) {})
		if err != nil {
			t.Fatalf("service %d: %v", i, err)
		}
		onions = append(onions, hs.Onion())
	}
	client := NewProxy(n)
	for _, onion := range onions {
		if _, err := client.Dial(onion); err != nil {
			t.Fatalf("dial %s: %v", onion, err)
		}
	}
}

func TestDuplicateServiceRejected(t *testing.T) {
	n := newTestNetwork(t, 18, 15)
	host := NewProxy(n)
	id := testIdentity(t, 7)
	if _, err := host.Host(id, func(*Conn) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := host.Host(id, func(*Conn) {}); !errors.Is(err, ErrServiceExists) {
		t.Fatalf("duplicate host error = %v, want ErrServiceExists", err)
	}
}

func TestRelaysObserveOnlyEncryptedCells(t *testing.T) {
	n := newTestNetwork(t, 19, 15)
	server := NewProxy(n)
	var serverConn *Conn
	hs, err := server.Host(testIdentity(t, 8), func(c *Conn) { serverConn = c })
	if err != nil {
		t.Fatal(err)
	}
	conn, err := NewProxy(n).Dial(hs.Onion())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("secret payload")); err != nil {
		t.Fatal(err)
	}
	n.Scheduler().RunFor(time.Second)
	if _, ok := serverConn.Recv(); !ok {
		t.Fatal("message lost")
	}
	// Every relay moved cells, and the network counted the switching
	// work; this is what a traffic observer sees — volume, not content.
	total := 0
	for _, ri := range n.Consensus().Relays {
		total += n.Relay(ri.FP).Stats().CellsRelayed
	}
	if total == 0 {
		t.Fatal("no cells were relayed; traffic bypassed the network")
	}
}

func TestShutdownClosesEverything(t *testing.T) {
	n := newTestNetwork(t, 20, 15)
	server := NewProxy(n)
	hs, err := server.Host(testIdentity(t, 9), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	client := NewProxy(n)
	conn, err := client.Dial(hs.Onion())
	if err != nil {
		t.Fatal(err)
	}
	server.Shutdown()
	// The established conn dies and new dials fail.
	if err := conn.Send([]byte("x")); err == nil {
		n.Scheduler().RunFor(time.Second)
	}
	if _, err := NewProxy(n).Dial(hs.Onion()); err == nil {
		t.Fatal("dial succeeded after host shutdown")
	}
}

func TestDescriptorRepublishAcrossPeriodRoll(t *testing.T) {
	n := newTestNetwork(t, 21, 15)
	server := NewProxy(n)
	hs, err := server.Host(testIdentity(t, 10), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	// Run two full virtual days: descriptor ids roll, the service must
	// keep republishing to the new responsible HSDirs, and dials must
	// keep working.
	for day := 0; day < 2; day++ {
		n.Scheduler().RunFor(24 * time.Hour)
		if _, err := NewProxy(n).Dial(hs.Onion()); err != nil {
			t.Fatalf("day %d: dial failed after period roll: %v", day+1, err)
		}
	}
}
