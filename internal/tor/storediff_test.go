package tor

import (
	"fmt"
	"testing"
	"time"

	"onionbots/internal/sim"
)

// The cross-backend differential battery, in the style of the
// scheduler's TestWheelMatchesHeapScheduler: every DescriptorStore
// backend is driven through one randomized op sequence per seed —
// puts, gets, removes, churn bursts, descriptor rollovers, and (for
// the mmap backend) forced compactions and index rebuilds at arbitrary
// points — and must present identical observable state at every step.
// The flat map backend is the executable reference; sharded and mmap
// must be indistinguishable from it through the interface.

// diffStores builds one instance of every backend.
func diffStores() []struct {
	name string
	s    DescriptorStore
} {
	return []struct {
		name string
		s    DescriptorStore
	}{
		{"flat", NewFlatDescriptorStore()},
		{"sharded", NewShardedDescriptorStore()},
		{"mmap", NewMmapDescriptorStore()},
	}
}

// TestStoreBackendsDifferential runs the battery over 24 seeds. Each
// seed's sequence is ~4000 ops with its own id-pool shape (including
// shared 8-byte prefixes that force probe-chain handling) and its own
// op mix.
func TestStoreBackendsDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 24; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runStoreDifferential(t, seed)
		})
	}
}

func runStoreDifferential(t *testing.T, seed uint64) {
	rng := sim.NewRNG(seed)
	backends := diffStores()
	flat := backends[0].s

	// Id pool: size and collision structure vary per seed.
	nIDs := 32 + rng.Intn(96)
	ids := make([]DescriptorID, nIDs)
	for i := range ids {
		copy(ids[i][:], rng.Bytes(20))
		if i%3 == 0 {
			copy(ids[i][:8], []byte("collide!")) // shared probe prefix
		}
	}
	// Descriptor pool: varied shapes, including nil.
	descs := make([]*Descriptor, 12)
	for i := range descs {
		if i == 0 {
			continue // descs[0] stays nil
		}
		descs[i] = testDescriptor(rng, sim.Epoch)
	}

	// checkID asserts every backend agrees with flat on one id.
	checkID := func(step int, id DescriptorID) {
		fd, fok := flat.Get(id)
		for _, b := range backends[1:] {
			bd, bok := b.s.Get(id)
			if !descMatch(fd, fok, bd, bok) {
				t.Fatalf("step %d: Get(%x) %s=(%v,%v) flat=(%v,%v)",
					step, id[:4], b.name, bd, bok, fd, fok)
			}
		}
	}

	period := uint64(0)
	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // put
			id := ids[rng.Intn(nIDs)]
			d := descs[rng.Intn(len(descs))]
			for _, b := range backends {
				b.s.Put(id, d)
			}
		case op < 6: // delete
			id := ids[rng.Intn(nIDs)]
			for _, b := range backends {
				b.s.Delete(id)
			}
		case op < 8: // get
			checkID(step, ids[rng.Intn(nIDs)])
		case op == 8: // churn burst: delete+put a run of hot ids
			for k := rng.Intn(16); k > 0; k-- {
				id := ids[rng.Intn(nIDs)]
				d := descs[rng.Intn(len(descs))]
				for _, b := range backends {
					b.s.Delete(id)
					b.s.Put(id, d)
				}
			}
		default: // rollover: the period advances, every live descriptor
			// is republished under the new period and a slice of old
			// ids expires — the daily HSDir migration pattern.
			period++
			for k := 0; k < nIDs/4; k++ {
				id := ids[rng.Intn(nIDs)]
				for _, b := range backends {
					b.s.Delete(id)
				}
			}
			for k := 0; k < nIDs/4; k++ {
				id := ids[rng.Intn(nIDs)]
				d := testDescriptor(rng, sim.Epoch.Add(time.Duration(period)*24*time.Hour))
				d.TimePeriod = period
				descs[rng.Intn(len(descs)-1)+1] = d
				for _, b := range backends {
					b.s.Put(id, d)
				}
			}
		}
		// Maintenance events the interface never sees must be invisible:
		// force them at random points.
		if rng.Bool(0.01) {
			backends[2].s.(*MmapDescriptorStore).compact()
		}
		if rng.Bool(0.005) {
			backends[2].s.(*MmapDescriptorStore).rebuildIndex()
		}
		lens := make([]int, len(backends))
		for i, b := range backends {
			lens[i] = b.s.Len()
		}
		for i := 1; i < len(lens); i++ {
			if lens[i] != lens[0] {
				t.Fatalf("step %d: Len %s=%d flat=%d", step, backends[i].name, lens[i], lens[0])
			}
		}
	}
	// Final full sweep: every id must agree everywhere.
	for _, id := range ids {
		checkID(-1, id)
	}
}
