package tor

import (
	"errors"
	"testing"
	"time"

	"onionbots/internal/sim"
)

// newTestNetwork bootstraps a network with numRelays relays, a published
// consensus, and everyone holding the HSDir flag.
func newTestNetwork(t *testing.T, seed uint64, numRelays int) *Network {
	t.Helper()
	sched := sim.NewScheduler()
	n := NewNetwork(sched, sim.NewRNG(seed), Config{})
	if err := n.Bootstrap(numRelays); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBootstrapGrantsHSDirAfterUptime(t *testing.T) {
	n := newTestNetwork(t, 1, 10)
	c := n.Consensus()
	if c.NumRelays() != 10 {
		t.Fatalf("consensus relays = %d, want 10", c.NumRelays())
	}
	if c.NumHSDirs() != 10 {
		t.Fatalf("HSDirs = %d, want 10 (all relays past 25h uptime)", c.NumHSDirs())
	}
}

func TestYoungRelayLacksHSDirFlag(t *testing.T) {
	n := newTestNetwork(t, 2, 8)
	young, err := n.AddRelay()
	if err != nil {
		t.Fatal(err)
	}
	n.PublishConsensus()
	if n.Consensus().IsHSDir(young.Fingerprint()) {
		t.Fatal("relay with zero uptime received HSDir flag")
	}
	// After 24h59m: still no flag.
	n.Scheduler().RunFor(24*time.Hour + 59*time.Minute)
	n.PublishConsensus()
	if n.Consensus().IsHSDir(young.Fingerprint()) {
		t.Fatal("relay with <25h uptime received HSDir flag")
	}
	// Crossing 25h: flagged.
	n.Scheduler().RunFor(2 * time.Minute)
	n.PublishConsensus()
	if !n.Consensus().IsHSDir(young.Fingerprint()) {
		t.Fatal("relay with >25h uptime denied HSDir flag")
	}
}

func TestConsensusScheduleRepublishesHourly(t *testing.T) {
	n := newTestNetwork(t, 3, 5)
	before := n.Stats().ConsensusCount
	n.Scheduler().RunFor(5 * time.Hour)
	after := n.Stats().ConsensusCount
	if got := after - before; got != 5 {
		t.Fatalf("consensus published %d times in 5h, want 5", got)
	}
}

func TestResponsibleHSDirsAreConsecutiveFromRingPosition(t *testing.T) {
	n := newTestNetwork(t, 4, 20)
	c := n.Consensus()
	var id DescriptorID // all zeros: before every fingerprint w.h.p.
	got := c.ResponsibleHSDirs(id)
	if len(got) != HSDirsPerReplica {
		t.Fatalf("responsible HSDirs = %d, want %d", len(got), HSDirsPerReplica)
	}
	// They must be the first three HSDirs in ring order.
	for i := 0; i < HSDirsPerReplica; i++ {
		if got[i] != c.hsdirs[i] {
			t.Fatalf("responsible[%d] = %s, want %s", i, got[i], c.hsdirs[i])
		}
	}
}

func TestResponsibleHSDirsWrapAroundRing(t *testing.T) {
	n := newTestNetwork(t, 5, 20)
	c := n.Consensus()
	var id DescriptorID
	for i := range id {
		id[i] = 0xff // after every fingerprint: wraps to ring start
	}
	got := c.ResponsibleHSDirs(id)
	if len(got) != HSDirsPerReplica {
		t.Fatalf("responsible HSDirs = %d, want %d", len(got), HSDirsPerReplica)
	}
	for i := 0; i < HSDirsPerReplica; i++ {
		if got[i] != c.hsdirs[i] {
			t.Fatalf("wrap: responsible[%d] = %s, want %s", i, got[i], c.hsdirs[i])
		}
	}
}

func TestPickRelaysExcludesAndBounds(t *testing.T) {
	n := newTestNetwork(t, 6, 10)
	c := n.Consensus()
	exclude := map[Fingerprint]struct{}{c.Relays[0].FP: {}}
	got := c.PickRelays(n.RNG(), 9, exclude)
	if len(got) != 9 {
		t.Fatalf("picked %d relays, want 9", len(got))
	}
	for _, fp := range got {
		if _, bad := exclude[fp]; bad {
			t.Fatal("excluded relay was picked")
		}
	}
	if got := c.PickRelays(n.RNG(), 100, nil); len(got) != 10 {
		t.Fatalf("over-asking returned %d, want all 10", len(got))
	}
}

func TestBootstrapRejectsTooFewRelays(t *testing.T) {
	n := NewNetwork(sim.NewScheduler(), sim.NewRNG(1), Config{})
	if err := n.Bootstrap(2); !errors.Is(err, ErrNotEnoughRelays) {
		t.Fatalf("Bootstrap(2) error = %v, want ErrNotEnoughRelays", err)
	}
}

func TestInjectRelayAtFingerprintRejectsDuplicates(t *testing.T) {
	n := newTestNetwork(t, 7, 5)
	fp := Fingerprint{42}
	if _, err := n.InjectRelayAtFingerprint(fp); err != nil {
		t.Fatal(err)
	}
	if _, err := n.InjectRelayAtFingerprint(fp); err == nil {
		t.Fatal("duplicate fingerprint injection accepted")
	}
}
