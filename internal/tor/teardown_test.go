package tor

import (
	"testing"
	"time"
)

func TestDoubleCloseIsSafe(t *testing.T) {
	n := newTestNetwork(t, 70, 15)
	server := NewProxy(n)
	var serverConn *Conn
	hs, err := server.Host(testIdentity(t, 30), func(c *Conn) { serverConn = c })
	if err != nil {
		t.Fatal(err)
	}
	conn, err := NewProxy(n).Dial(hs.Onion())
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	conn.Close() // second close must be a no-op
	serverConn.Close()
	n.Scheduler().RunFor(time.Second)
}

func TestSendAfterPeerShutdownFails(t *testing.T) {
	n := newTestNetwork(t, 71, 15)
	server := NewProxy(n)
	hs, err := server.Host(testIdentity(t, 31), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := NewProxy(n).Dial(hs.Onion())
	if err != nil {
		t.Fatal(err)
	}
	server.Shutdown()
	if err := conn.Send([]byte("into the void")); err == nil {
		t.Fatal("send succeeded after peer shutdown")
	}
}

func TestStaleRendezvousCookieFailsDial(t *testing.T) {
	// A service whose intro points are live but whose rendezvous
	// never completes: simulate by stopping the service between
	// descriptor fetch and intro... simplest equivalent: dial twice,
	// the first dial consumed nothing, both must work — then stop and
	// the third fails.
	n := newTestNetwork(t, 72, 15)
	server := NewProxy(n)
	hs, err := server.Host(testIdentity(t, 32), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	client := NewProxy(n)
	if _, err := client.Dial(hs.Onion()); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Dial(hs.Onion()); err != nil {
		t.Fatal(err)
	}
	hs.Stop()
	if _, err := client.Dial(hs.Onion()); err == nil {
		t.Fatal("dial succeeded after Stop")
	}
}

func TestManyConnectionsOneService(t *testing.T) {
	n := newTestNetwork(t, 73, 15)
	server := NewProxy(n)
	var conns []*Conn
	hs, err := server.Host(testIdentity(t, 33), func(c *Conn) { conns = append(conns, c) })
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Conn, 0, 20)
	for i := 0; i < 20; i++ {
		c, err := NewProxy(n).Dial(hs.Onion())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		clients = append(clients, c)
	}
	if len(conns) != 20 {
		t.Fatalf("server accepted %d conns, want 20", len(conns))
	}
	// Each pair is independent: message on conn i arrives only there.
	for i, c := range clients {
		if err := c.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	n.Scheduler().RunFor(time.Second)
	for i, sc := range conns {
		got, ok := sc.Recv()
		if !ok || len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("conn %d received %v ok=%v", i, got, ok)
		}
		if _, extra := sc.Recv(); extra {
			t.Fatalf("conn %d received a second message", i)
		}
	}
}

func TestCircuitStateCleanedAfterClose(t *testing.T) {
	n := newTestNetwork(t, 74, 15)
	server := NewProxy(n)
	hs, err := server.Host(testIdentity(t, 34), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	client := NewProxy(n)
	before := countCircuits(n)
	conn, err := client.Dial(hs.Onion())
	if err != nil {
		t.Fatal(err)
	}
	during := countCircuits(n)
	if during <= before {
		t.Fatal("dial created no relay circuit state")
	}
	conn.Close()
	after := countCircuits(n)
	if after >= during {
		t.Fatalf("close did not release relay circuit state: %d -> %d", during, after)
	}
}

func countCircuits(n *Network) int {
	total := 0
	for _, ri := range n.Consensus().Relays {
		total += len(n.Relay(ri.FP).circuits)
	}
	return total
}

// descriptorsServed sums the serving counter over every relay — the
// observable cost of a client descriptor fetch.
func descriptorsServed(n *Network) int {
	total := 0
	for _, ri := range n.Consensus().Relays {
		if r := n.Relay(ri.FP); r != nil {
			total += r.stats.DescriptorsServed
		}
	}
	return total
}

func TestDescriptorCacheHitAvoidsRefetch(t *testing.T) {
	n := newTestNetwork(t, 80, 15)
	server := NewProxy(n)
	hs, err := server.Host(testIdentity(t, 40), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	client := NewProxy(n)
	if _, err := client.Dial(hs.Onion()); err != nil {
		t.Fatal(err)
	}
	served := descriptorsServed(n)
	if served == 0 {
		t.Fatal("first dial should have fetched a descriptor")
	}
	for i := 0; i < 3; i++ {
		if _, err := client.Dial(hs.Onion()); err != nil {
			t.Fatalf("cached dial %d: %v", i, err)
		}
	}
	if got := descriptorsServed(n); got != served {
		t.Fatalf("cached dials hit HSDirs: served %d -> %d", served, got)
	}
	// A fresh proxy has no cache and must fetch for itself.
	if _, err := NewProxy(n).Dial(hs.Onion()); err != nil {
		t.Fatal(err)
	}
	if got := descriptorsServed(n); got <= served {
		t.Fatal("fresh proxy did not fetch a descriptor")
	}
}

func TestDescriptorCacheInvalidatedByTimePeriodRollover(t *testing.T) {
	n := newTestNetwork(t, 81, 15)
	server := NewProxy(n)
	hs, err := server.Host(testIdentity(t, 41), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	client := NewProxy(n)
	if _, err := client.Dial(hs.Onion()); err != nil {
		t.Fatal(err)
	}
	sid, _ := ParseOnion(hs.Onion())
	before := TimePeriod(n.Now(), sid)
	// Walk the clock across the next descriptor-id rollover; the hourly
	// republish schedule keeps fresh descriptors at the new ring
	// positions.
	for TimePeriod(n.Now(), sid) == before {
		n.Scheduler().RunFor(time.Hour)
	}
	served := descriptorsServed(n)
	if _, err := client.Dial(hs.Onion()); err != nil {
		t.Fatalf("dial after rollover: %v", err)
	}
	if got := descriptorsServed(n); got == served {
		t.Fatal("rollover did not invalidate the cache: no fresh fetch happened")
	}
	if e, ok := client.descCache[sid]; !ok || e.period == before {
		t.Fatal("cache entry not replaced after rollover")
	}
}

func TestDescriptorCacheStaleIntroPointsFallBackToFreshFetch(t *testing.T) {
	n := newTestNetwork(t, 82, 25)
	server := NewProxy(n)
	hs, err := server.Host(testIdentity(t, 42), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	client := NewProxy(n)
	if _, err := client.Dial(hs.Onion()); err != nil {
		t.Fatal(err)
	}
	// Kill every introduction point the cached descriptor names. The
	// service repairs its circuits and republishes on the next consensus
	// tick, so the cached descriptor is now stale: its intro points are
	// gone and the stored descriptors no longer match it.
	for _, ip := range hs.IntroPoints() {
		n.RemoveRelay(ip)
	}
	n.Scheduler().RunFor(n.Config().ConsensusInterval + time.Minute)
	served := descriptorsServed(n)
	if _, err := client.Dial(hs.Onion()); err != nil {
		t.Fatalf("dial after intro churn: %v", err)
	}
	if got := descriptorsServed(n); got == served {
		t.Fatal("stale cache entry was used without a fresh fetch")
	}
}

func TestDescriptorCacheInvalidatedOnDialFailure(t *testing.T) {
	n := newTestNetwork(t, 83, 15)
	server := NewProxy(n)
	hs, err := server.Host(testIdentity(t, 43), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	client := NewProxy(n)
	if _, err := client.Dial(hs.Onion()); err != nil {
		t.Fatal(err)
	}
	sid, _ := ParseOnion(hs.Onion())
	if _, ok := client.descCache[sid]; !ok {
		t.Fatal("dial did not populate the descriptor cache")
	}
	hs.Stop()
	if _, err := client.Dial(hs.Onion()); err == nil {
		t.Fatal("dial succeeded after Stop")
	}
	if _, ok := client.descCache[sid]; ok {
		t.Fatal("failed dial left the cached descriptor in place")
	}
}

func TestConsensusExcludesNothingWhenAllEligible(t *testing.T) {
	n := newTestNetwork(t, 75, 8)
	c := n.Consensus()
	if c.NumRelays() != 8 || c.NumHSDirs() != 8 {
		t.Fatalf("consensus %d relays / %d hsdirs, want 8/8", c.NumRelays(), c.NumHSDirs())
	}
	// Fingerprints must be strictly sorted (ring order).
	for i := 1; i < len(c.Relays); i++ {
		if !c.Relays[i-1].FP.Less(c.Relays[i].FP) {
			t.Fatal("consensus not sorted by fingerprint")
		}
	}
}
