package tor

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
)

// The simulator models Tor's per-hop relay crypto as a running
// AES-128-CTR stream per hop and direction, exactly as before, but the
// cipher state is built for speed: one AES key schedule is expanded per
// network (the cell cipher), and each hop direction is a value-type CTR
// stream positioned by a fresh 128-bit random IV drawn from the run's
// RNG. The (key, IV) pair is unique per hop and direction, so every hop
// still applies a distinct keystream — what the onion-layering
// experiments observe — while building a circuit performs zero heap
// allocations and zero AES key expansions. The secrecy of the hop
// streams is not load-bearing in the simulation (the completed-handshake
// model installs identical state at both endpoints by construction).
//
// Most streams in a run belong to one-shot handshake circuits and only
// ever see a single cell; they use an allocation-free block-at-a-time
// path. A stream that sees a second cell is carrying traffic, so it
// upgrades itself once to a stdlib CTR stream (one small allocation)
// whose multi-block assembly pipelines the AES rounds.

// ctrStream is a persistent AES-CTR keystream for one direction of one
// circuit hop. The origin proxy and the relay hold synchronized copies;
// every cell that traverses the hop advances both. The zero value is
// unusable; make one with newCTRStream.
type ctrStream struct {
	net   *Network            // owner of the shared cell cipher
	ctr   [aes.BlockSize]byte // next counter block
	pad   [aes.BlockSize]byte // current keystream block
	used  int                 // consumed bytes of pad
	prime bool                // saw a first cell; upgrade on the next
	fast  cipher.Stream       // non-nil once upgraded
}

// newCTRStream positions a stream at iv over the network's shared cell
// cipher. The two synchronized copies of a hop direction are created by
// calling this twice with the same iv.
func newCTRStream(n *Network, iv *[aes.BlockSize]byte) ctrStream {
	return ctrStream{net: n, ctr: *iv, used: aes.BlockSize}
}

// xorBody applies the keystream to the onion-encrypted portion of a wire
// cell: everything after the cleartext circuit id.
func (c *ctrStream) xorBody(wire *[CellSize]byte) {
	b := wire[8:]
	if c.fast == nil {
		if c.prime {
			c.upgrade()
		} else {
			c.prime = true
			c.xorSlow(b)
			return
		}
	}
	c.fast.XORKeyStream(b, b)
}

// xorSlow is the allocation-free block-at-a-time path used for the
// stream's first cell.
func (c *ctrStream) xorSlow(b []byte) {
	// Drain whatever is left of the current keystream block first.
	if n := min(len(b), aes.BlockSize-c.used); n > 0 {
		subtle.XORBytes(b[:n], b[:n], c.pad[c.used:c.used+n])
		c.used += n
		b = b[n:]
	}
	if len(b) == 0 {
		return
	}
	// The keystream page lives on the Network rather than the stack:
	// Encrypt is an interface call, so a local array would escape to the
	// heap on every cell. xorSlow is a leaf — nothing re-enters it
	// mid-fill — and the scheduler is single-threaded, so one shared
	// page suffices.
	ks := c.net.ksPage[:]
	blocks := (len(b) + aes.BlockSize - 1) / aes.BlockSize
	for i := 0; i < blocks; i++ {
		c.net.cellCipher.Encrypt(ks[i*aes.BlockSize:(i+1)*aes.BlockSize], c.ctr[:])
		c.incCtr()
	}
	subtle.XORBytes(b, b, ks[:len(b)])
	// Park the unconsumed tail of the final block for the next cell.
	copy(c.pad[:], ks[(blocks-1)*aes.BlockSize:blocks*aes.BlockSize])
	c.used = len(b) - (blocks-1)*aes.BlockSize
}

// upgrade swaps in a stdlib CTR stream positioned at exactly the current
// keystream offset: its IV is the counter of the partially consumed
// block (the counter one before c.ctr when mid-block), and the consumed
// prefix is discarded by advancing the fresh stream over scratch.
func (c *ctrStream) upgrade() {
	iv := c.ctr
	discard := 0
	if c.used < aes.BlockSize {
		// c.ctr already points past the partially consumed pad block.
		for i := aes.BlockSize - 1; i >= 0; i-- {
			iv[i]--
			if iv[i] != 0xff {
				break
			}
		}
		discard = c.used
	}
	c.fast = cipher.NewCTR(c.net.cellCipher, iv[:])
	if discard > 0 {
		skip := c.net.ksPage[:discard] // scratch; avoids a stack escape
		c.fast.XORKeyStream(skip, skip)
	}
}

// incCtr advances the counter block (big-endian, wrapping).
func (c *ctrStream) incCtr() {
	for i := aes.BlockSize - 1; i >= 0; i-- {
		c.ctr[i]++
		if c.ctr[i] != 0 {
			break
		}
	}
}
