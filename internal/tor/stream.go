package tor

import (
	"crypto/aes"
	"crypto/cipher"
)

// ctrStream is a persistent AES-128-CTR keystream for one direction of
// one circuit hop, mirroring Tor's running-stream relay crypto. The
// origin proxy and the relay hold synchronized copies; every cell that
// traverses the hop advances both.
type ctrStream struct {
	s cipher.Stream
}

// newCTRStream builds a stream from a 16-byte key. The IV is zero; keys
// are fresh per circuit hop and direction, so the (key, IV) pair never
// repeats.
func newCTRStream(key []byte) *ctrStream {
	block, err := aes.NewCipher(key)
	if err != nil {
		// Key material is produced internally with the correct length; a
		// failure here is programmer error, not input error.
		panic("tor: bad AES key: " + err.Error())
	}
	iv := make([]byte, aes.BlockSize)
	return &ctrStream{s: cipher.NewCTR(block, iv)}
}

// xorBody applies the keystream to the onion-encrypted portion of a wire
// cell: everything after the cleartext circuit id.
func (c *ctrStream) xorBody(wire *[CellSize]byte) {
	c.s.XORKeyStream(wire[8:], wire[8:])
}

// hopKeyPair is the symmetric key material "negotiated" for one hop.
// The simulator models the completed Diffie-Hellman handshake by
// installing the same fresh keys at both endpoints.
type hopKeyPair struct {
	fwdKey, bwdKey []byte
}
