package tor

import (
	"crypto/aes"
	"crypto/cipher"
)

// The simulator models Tor's per-hop relay crypto as a running
// AES-128-CTR stream per hop and direction, exactly as before, but the
// cipher state is built for speed: one AES key schedule is expanded per
// network (the cell cipher), and each hop direction is a value-type CTR
// stream positioned by a fresh 128-bit random IV drawn from the run's
// RNG. The (key, IV) pair is unique per hop and direction, so every hop
// still applies a distinct keystream — what the onion-layering
// experiments observe — while building a circuit performs zero heap
// allocations and zero AES key expansions. The secrecy of the hop
// streams is not load-bearing in the simulation (the completed-handshake
// model installs identical state at both endpoints by construction).
//
// A stream materializes its stdlib CTR state lazily, on the first cell
// it actually carries: creating a stream (building a circuit) stays
// allocation-free, and every cell — including the single cell a
// one-shot handshake circuit ever sees — runs through the pipelined
// multi-block AES assembly. An earlier revision kept a block-at-a-time
// zero-allocation path for first cells; under join-heavy protocol
// churn, where almost every cell is a first cell, the unpipelined AES
// cost (~3×) dominated the one small allocation it saved.

// ctrStream is a persistent AES-CTR keystream for one direction of one
// circuit hop. The origin proxy and the relay hold synchronized copies;
// every cell that traverses the hop advances both. The zero value is
// unusable; make one with newCTRStream.
type ctrStream struct {
	net  *Network            // owner of the shared cell cipher
	ctr  [aes.BlockSize]byte // the stream's IV (counter start)
	fast cipher.Stream       // non-nil once the first cell arrived
}

// newCTRStream positions a stream at iv over the network's shared cell
// cipher. The two synchronized copies of a hop direction are created by
// calling this twice with the same iv.
func newCTRStream(n *Network, iv *[aes.BlockSize]byte) ctrStream {
	return ctrStream{net: n, ctr: *iv}
}

// xorBody applies the keystream to the onion-encrypted portion of a wire
// cell: everything after the cleartext circuit id.
func (c *ctrStream) xorBody(wire *[CellSize]byte) {
	b := wire[8:]
	if c.fast == nil {
		c.fast = cipher.NewCTR(c.net.cellCipher, c.ctr[:])
	}
	c.fast.XORKeyStream(b, b)
}
