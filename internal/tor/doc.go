// Package tor is an in-process simulator of the Tor network features the
// OnionBots paper relies on (Section III): onion routers, the hourly
// consensus, hidden-service directories (HSDir flag after 25 hours of
// uptime), hidden-service descriptors placed on a fingerprint ring,
// introduction points, rendezvous points, and circuits carrying
// fixed-size 512-byte cells under per-hop AES-CTR layered encryption.
//
// Nothing in this package touches a real network. The simulator exists
// so that the protocol-level behaviours the paper analyses — IP/.onion
// decoupling, address rotation, HSDir positioning attacks (Section
// VI-A), and SOAP clone hosting (Section VI-B) — exercise real code
// paths with real cryptography, deterministically, inside one process.
//
// Substitution note (see DESIGN.md): hidden-service identities are
// Ed25519 keys rather than the RSA-1024 keys of 2015-era Tor. The
// paper's address-rotation scheme requires the bot and the botmaster to
// derive the same key independently from a shared seed; Ed25519 key
// derivation is deterministic by construction, while crypto/rsa's
// generator is deliberately not. Every derived quantity keeps the
// paper's formulas: the onion address is the base32 encoding of the
// first 10 bytes of SHA-1 of the public key, and descriptor IDs follow
// descriptor-id = H(identifier || H(time-period || cookie || replica)).
package tor
