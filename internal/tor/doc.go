// Package tor is an in-process simulator of the Tor network features the
// OnionBots paper relies on (Section III): onion routers, the hourly
// consensus, hidden-service directories (HSDir flag after 25 hours of
// uptime), hidden-service descriptors placed on a fingerprint ring,
// introduction points, rendezvous points, and circuits carrying
// fixed-size 512-byte cells under per-hop AES-CTR layered encryption.
//
// Nothing in this package touches a real network. The simulator exists
// so that the protocol-level behaviours the paper analyses — IP/.onion
// decoupling, address rotation, HSDir positioning attacks (Section
// VI-A), and SOAP clone hosting (Section VI-B) — exercise real code
// paths with real cryptography, deterministically, inside one process.
//
// # Data-plane fast path
//
// The simulated data plane is built to sustain campaign-scale
// experiment loads (millions of dials and cells per run):
//
//   - Circuit crypto is cached per hop: one AES schedule is expanded
//     per network and each hop direction is a value-type CTR stream
//     positioned by a fresh random IV, so building a circuit performs
//     no key expansion and no heap allocation, and forwarding a cell
//     performs no key derivation and no cipher construction
//     (stream.go). Streams that carry a second cell upgrade once to the
//     stdlib's pipelined CTR implementation.
//   - Cells flow through recycled fixed-size scratch buffers
//     (Network.getWire/putWire) and are decoded in place with
//     payload views, so relaying a cell allocates nothing.
//   - Each proxy keeps a verified-descriptor cache consulted before
//     hitting HSDirs. A cached descriptor is reused only when a cheap
//     coherence probe proves a fresh fetch would return byte-identical
//     bytes (same time period, a responsible directory still serving
//     the same signature); entries invalidate on descriptor-id
//     rollover, republish, directory churn, and dial failure. The
//     Ed25519 signature is verified once per descriptor, not once per
//     dial.
//   - Signature verification of immutable bytes (descriptors, intro
//     bindings) is memoized network-wide; outcomes are unchanged
//     because verification is a pure function of its input.
//   - Directory state lives in sharded open-addressed tables keyed by
//     the ring digests themselves (store.go): HSDir descriptor storage
//     sits behind the DescriptorStore interface (flat map reference
//     backend vs the sharded default, swappable per Config), and the
//     fingerprint→relay table uses the same layout, so building and
//     churning very large networks is not map-rehash bound.
//
// All of this is observationally equivalent to the slow path: fixed
// seeds produce byte-identical experiment outputs.
//
// # Client resilience
//
// The client side answers the infrastructure fault plane
// (internal/faults): Proxy.DialAsync retries failed dials under a
// RetryPolicy — bounded attempts, exponential backoff on the
// simulated clock — and after every failure invalidates the cached
// descriptor, marks the guard set dirty, and rotates replica
// preference so the retry is a fresh attempt. A zero policy makes
// DialAsync behave exactly like the synchronous Dial. Path building,
// intro-point selection, and intro repair all skip-and-resample
// relays a stale consensus still lists but that are no longer alive,
// and hosted services detect when their responsible directory set
// moves within a descriptor period and republish to the survivors
// (NetworkStats counts failures, retries, recoveries, and repairs).
//
// Substitution note (see docs/ARCHITECTURE.md): hidden-service
// identities are
// Ed25519 keys rather than the RSA-1024 keys of 2015-era Tor. The
// paper's address-rotation scheme requires the bot and the botmaster to
// derive the same key independently from a shared seed; Ed25519 key
// derivation is deterministic by construction, while crypto/rsa's
// generator is deliberately not. Every derived quantity keeps the
// paper's formulas: the onion address is the base32 encoding of the
// first 10 bytes of SHA-1 of the public key, and descriptor IDs follow
// descriptor-id = H(identifier || H(time-period || cookie || replica)).
package tor
