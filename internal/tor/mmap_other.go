//go:build !unix

package tor

// Non-unix fallback: chunks are plain heap slices. The store keeps its
// append-log layout and compaction behaviour — only the off-heap
// property is lost, which is a performance matter, not a correctness
// one (the differential battery runs identically).
type mmapChunk struct {
	buf []byte
}

func newMmapChunk(size int) mmapChunk { return mmapChunk{buf: make([]byte, size)} }

func (c mmapChunk) bytes() []byte { return c.buf }

func (c mmapChunk) release() {}
