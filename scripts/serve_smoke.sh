#!/usr/bin/env bash
# serve-smoke: the crash-safety acceptance test for `onionsim -serve`.
#
# It proves the checkpoint/resume contract end to end, from outside the
# process boundary where no Go test can cheat:
#
#   1. run the sweep once in batch mode       -> want.json (the golden bytes)
#   2. start the server, submit the same spec
#   3. kill -9 the server mid-sweep (some tasks journaled, some not)
#   4. restart the server over the same jobs dir; it resumes the job
#   5. fetch the finished result              -> got.json
#   6. cmp want.json got.json                 -> must be byte-identical
#
# Requires curl and jq (both in the CI image). Override BIN / SPEC /
# PORT via the environment.
set -euo pipefail

BIN=${BIN:-/tmp/onionsim-ci}
SPEC=${SPEC:-examples/serve/fig6-serve-grid.json}
PORT=${PORT:-18466}
BASE="http://127.0.0.1:$PORT"
WORK=$(mktemp -d)
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

say() { echo "serve-smoke: $*" >&2; }

say "golden batch run of $SPEC"
"$BIN" -sweep "$SPEC" -parallel 2 -json > "$WORK/want.json" 2> /dev/null

start_server() {
  "$BIN" -serve "127.0.0.1:$PORT" -jobs-dir "$WORK/jobs" -parallel 1 >> "$WORK/server.log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" > /dev/null 2>&1; then return 0; fi
    sleep 0.05
  done
  say "server did not come up; log follows"
  cat "$WORK/server.log" >&2
  exit 1
}

start_server
say "server up (pid $SERVER_PID); submitting the same spec as a job"
JOB=$(curl -fsS -X POST --data-binary @"$SPEC" "$BASE/jobs" | jq -r .id)
if [ -z "$JOB" ] || [ "$JOB" = null ]; then
  say "job submission failed"
  exit 1
fi

# Poll until the journal holds a strict prefix of the grid — at least
# one task done, at least one pending — then SIGKILL the server. That
# is the torn-state window the whole subsystem exists for.
KILLED=0
for _ in $(seq 1 400); do
  STATUS=$(curl -fsS "$BASE/jobs/$JOB")
  DONE=$(echo "$STATUS" | jq -r .done)
  TOTAL=$(echo "$STATUS" | jq -r .total)
  STATE=$(echo "$STATUS" | jq -r .state)
  if [ "$STATE" = completed ]; then
    break
  fi
  if [ "$DONE" -ge 1 ] && [ "$DONE" -lt "$TOTAL" ]; then
    say "kill -9 at $DONE/$TOTAL journaled tasks"
    kill -9 "$SERVER_PID"
    wait "$SERVER_PID" 2> /dev/null || true
    KILLED=1
    break
  fi
  sleep 0.02
done
if [ "$KILLED" != 1 ]; then
  say "job finished before the kill window opened; enlarge the grid"
  exit 1
fi

say "restarting the server over the same jobs dir"
start_server
STATE=""
for _ in $(seq 1 600); do
  STATE=$(curl -fsS "$BASE/jobs/$JOB" | jq -r .state)
  case "$STATE" in
    completed) break ;;
    failed | cancelled)
      say "resumed job ended $STATE; log follows"
      cat "$WORK/server.log" >&2
      exit 1
      ;;
  esac
  sleep 0.05
done
if [ "$STATE" != completed ]; then
  say "resume timed out in state '$STATE'; log follows"
  cat "$WORK/server.log" >&2
  exit 1
fi

curl -fsS "$BASE/jobs/$JOB/result" > "$WORK/got.json"
cmp "$WORK/want.json" "$WORK/got.json"
say "OK: resumed result is byte-identical to the batch run ($(wc -c < "$WORK/want.json") bytes)"
