// Per-figure regeneration benchmarks: one benchmark per table and
// figure of the paper, each running the corresponding experiment in its
// quick preset. `go test -bench=. -benchmem` therefore exercises every
// reproduced result and reports the cost of regenerating it.
package onionbots_test

import (
	"testing"

	"onionbots/internal/botcrypto"
	"onionbots/internal/experiment"
	"onionbots/internal/sim"
	"onionbots/internal/tor"
)

func BenchmarkFig3RepairWalkthrough(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.RunFig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig4(b *testing.B, pruning bool) (closeness, degree *experiment.Result) {
	b.Helper()
	cfg := experiment.DefaultFig4Config(true)
	cfg.Pruning = pruning
	var err error
	for i := 0; i < b.N; i++ {
		closeness, degree, err = experiment.RunFig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return closeness, degree
}

func BenchmarkFig4aClosenessNoPruning(b *testing.B) {
	closeness, _ := benchFig4(b, false)
	if len(closeness.Series) != 3 {
		b.Fatal("missing degree series")
	}
}

func BenchmarkFig4bClosenessPruning(b *testing.B) {
	closeness, _ := benchFig4(b, true)
	if len(closeness.Series) != 3 {
		b.Fatal("missing degree series")
	}
}

func BenchmarkFig4cDegreeNoPruning(b *testing.B) {
	_, degree := benchFig4(b, false)
	if len(degree.Series) != 3 {
		b.Fatal("missing degree series")
	}
}

func BenchmarkFig4dDegreePruning(b *testing.B) {
	_, degree := benchFig4(b, true)
	if len(degree.Series) != 3 {
		b.Fatal("missing degree series")
	}
}

func benchFig5(b *testing.B) (components, degree, diameter *experiment.Result) {
	b.Helper()
	cfg := experiment.DefaultFig5Config(true, 0)
	var err error
	for i := 0; i < b.N; i++ {
		components, degree, diameter, err = experiment.RunFig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return components, degree, diameter
}

func BenchmarkFig5abComponents(b *testing.B) {
	components, _, _ := benchFig5(b)
	if components.SeriesByName("DDSR") == nil || components.SeriesByName("Normal") == nil {
		b.Fatal("missing series")
	}
}

func BenchmarkFig5cdDegreeCentrality(b *testing.B) {
	_, degree, _ := benchFig5(b)
	if degree.SeriesByName("DDSR") == nil {
		b.Fatal("missing series")
	}
}

func BenchmarkFig5efDiameter(b *testing.B) {
	_, _, diameter := benchFig5(b)
	if diameter.SeriesByName("Normal") == nil {
		b.Fatal("missing series")
	}
}

func BenchmarkFig6PartitionThreshold(b *testing.B) {
	cfg := experiment.DefaultFig6Config(true)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFig6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1CryptoAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTable1([]byte("bench"))
		if err != nil {
			b.Fatal(err)
		}
		if err := experiment.VerifyTable1Shape(res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7SoapCampaign(b *testing.B) {
	cfg := experiment.DefaultFig7Config(true)
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 4
		if _, err := experiment.RunFig7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8SuperOnion(b *testing.B) {
	cfg := experiment.DefaultFig8Config(true)
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 5
		if _, err := experiment.RunFig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoWSoapResistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunPoWDefense(uint64(i)+10, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHSDirPositioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunHSDirAttack(uint64(i) + 9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDDSRAblation regenerates the maintenance-policy ablation
// table (the design-choice study behind Section IV-C).
func BenchmarkDDSRAblation(b *testing.B) {
	cfg := experiment.DefaultAblationConfig(true)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunDDSRAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVanityOnionSearch measures raw onion-address generation (one
// candidate per op), the unit cost behind the Section IV-B vanity and
// random-probing infeasibility arguments.
func BenchmarkVanityOnionSearch(b *testing.B) {
	rng := sim.NewRNG(1)
	var seed [32]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(seed[:], rng.Bytes(32))
		id := tor.IdentityFromSeed(seed)
		_ = id.ServiceID()
	}
}

// BenchmarkCellRelayHop measures the data-plane fast path in isolation:
// one fixed-size message pushed end to end over an established
// rendezvous connection — an onion-layered send, three forward hops, a
// rendezvous join, and three backward hops, all through the cached
// per-hop cipher state and recycled cell buffers.
func BenchmarkCellRelayHop(b *testing.B) {
	sched := sim.NewScheduler()
	n := tor.NewNetwork(sched, sim.NewRNG(2), tor.Config{})
	if err := n.Bootstrap(20); err != nil {
		b.Fatal(err)
	}
	var seed [32]byte
	seed[0] = 2
	server := tor.NewProxy(n)
	hs, err := server.Host(tor.IdentityFromSeed(seed), func(*tor.Conn) {})
	if err != nil {
		b.Fatal(err)
	}
	conn, err := tor.NewProxy(n).Dial(hs.Onion())
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, tor.MaxCellPayload)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := conn.Send(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSealOpenSession measures a seal/open round trip under a
// cached botcrypto.SealKey session — the unit cost of every message a
// bot sends or receives on the overlay.
func BenchmarkSealOpenSession(b *testing.B) {
	drbg := botcrypto.NewDRBG([]byte("bench-session"))
	sk := botcrypto.NewSealKey(drbg.Bytes(32))
	msg := drbg.Bytes(120)
	var cell [botcrypto.SealedSize]byte
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := sk.SealSizedInto(cell[:], msg, drbg); err != nil {
			b.Fatal(err)
		}
		if _, err := sk.Open(cell[:]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHiddenServiceDial measures one full descriptor-fetch +
// introduction + rendezvous handshake on the simulated Tor network.
func BenchmarkHiddenServiceDial(b *testing.B) {
	sched := sim.NewScheduler()
	n := tor.NewNetwork(sched, sim.NewRNG(1), tor.Config{})
	if err := n.Bootstrap(20); err != nil {
		b.Fatal(err)
	}
	var seed [32]byte
	seed[0] = 1
	id := tor.IdentityFromSeed(seed)
	server := tor.NewProxy(n)
	hs, err := server.Host(id, func(*tor.Conn) {})
	if err != nil {
		b.Fatal(err)
	}
	client := tor.NewProxy(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := client.Dial(hs.Onion())
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}
