// Command ddsrviz replays Figure 3 of the OnionBots paper — node
// removal and self-repair in a 3-regular graph of 12 nodes — printing
// each panel's state and the repair edges as they appear.
package main

import (
	"fmt"
	"os"
	"strings"

	"onionbots/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ddsrviz: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	g := experiment.Fig3Graph()
	fmt.Println("Figure 3 walkthrough: 3-regular graph, 12 nodes")
	fmt.Println("initial adjacency:")
	for _, u := range g.Nodes() {
		nbrs := g.Neighbors(u)
		parts := make([]string, len(nbrs))
		for i, v := range nbrs {
			parts[i] = fmt.Sprintf("%d", v)
		}
		fmt.Printf("  %2d: %s\n", u, strings.Join(parts, " "))
	}
	fmt.Println()

	res, steps, err := experiment.RunFig3()
	if err != nil {
		return err
	}
	for i, s := range steps {
		fmt.Printf("panel %d: remove node %d\n", i+2, s.Removed)
		if len(s.EdgesAdded) == 0 {
			fmt.Println("  repair: no new edges needed")
		} else {
			for _, e := range s.EdgesAdded {
				fmt.Printf("  repair: new edge (%d,%d)\n", e[0], e[1])
			}
		}
		fmt.Printf("  %d nodes, %d edges, connected=%v, max degree %d\n",
			s.NodesLeft, s.EdgesLeft, s.Connected, s.MaxDegree)
	}
	fmt.Println()
	for _, note := range res.Notes {
		fmt.Println("note:", note)
	}
	return nil
}
