package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkFoo/bar-4   1000   52.8 ns/op   16 B/op   1 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Name != "BenchmarkFoo/bar" || r.Iterations != 1000 || r.NsPerOp != 52.8 ||
		r.BytesPerOp != 16 || r.AllocsPerOp != 1 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics != nil {
		t.Fatalf("unexpected metrics %v", r.Metrics)
	}
}

func TestParseBenchLineCustomMetrics(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkFig5MillionNode-8   1   42.5e9 ns/op   131.5 heap-MiB   183 log-chunks")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Metrics["heap-MiB"] != 131.5 || r.Metrics["log-chunks"] != 183 {
		t.Fatalf("custom metrics not captured: %+v", r.Metrics)
	}
}

func TestParseBenchLineRejectsMalformed(t *testing.T) {
	if _, ok := parseBenchLine("BenchmarkShort"); ok {
		t.Fatal("truncated line accepted")
	}
	if _, ok := parseBenchLine("BenchmarkFoo-4 notanumber 5 ns/op"); ok {
		t.Fatal("bad iteration count accepted")
	}
}
