// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON document on stdout, so CI can archive benchmark runs as
// machine-readable artifacts (see the Makefile's bench target, which
// emits BENCH_pr3.json).
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./... | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Package     string  `json:"package,omitempty"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics holds custom units reported via testing.B.ReportMetric
	// (e.g. "heap-MiB" from the million-node memory-profile benchmark).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted artifact.
type Doc struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(in *os.File, out *os.File) error {
	doc := Doc{Results: []Result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				r.Package = pkg
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkFoo/bar-4   1000   52.8 ns/op   16 B/op   1 allocs/op
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the trailing -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		default:
			if f, ferr := strconv.ParseFloat(val, 64); ferr == nil {
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = f
			}
		}
	}
	return r, true
}
