// Command soapctl builds a simulated OnionBot network on the in-process
// Tor substrate and runs a SOAP containment campaign against it,
// reporting progress — the defender's-eye view of Section VI-B.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"onionbots/internal/core"
	"onionbots/internal/soap"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "soapctl: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bots     = flag.Int("bots", 12, "victim botnet size")
		relays   = flag.Int("relays", 20, "simulated Tor relays")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		hours    = flag.Int("hours", 4, "campaign length in virtual hours")
		interval = flag.Duration("wave", 30*time.Second, "clone wave interval (virtual)")
		solve    = flag.Bool("solve-pow", false, "pay proof-of-work challenges from hardened bots")
	)
	flag.Parse()

	fmt.Printf("building %d-bot OnionBot network on %d simulated relays (seed %d)...\n",
		*bots, *relays, *seed)
	bn, err := core.NewBotNet(*seed, *relays, core.BotConfig{DMin: 2, DMax: 4})
	if err != nil {
		return err
	}
	bn.Master.HotlistSize = 3 // hardcoded-list + hotlist bootstrap (Section IV-B)
	if err := bn.Grow(*bots, nil); err != nil {
		return err
	}
	bn.Run(6 * time.Minute)
	g := bn.OverlayGraph()
	fmt.Printf("formed overlay: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	if err := bn.Broadcast("baseline-ping", nil, 1); err != nil {
		return err
	}
	bn.Run(2 * time.Minute)
	fmt.Printf("baseline broadcast reach: %d/%d bots\n\n", bn.ExecutedCount("baseline-ping"), *bots)

	captured := bn.AliveBots()[0]
	fmt.Printf("capturing bot %s and starting SOAP campaign...\n", captured.Onion())
	attacker := soap.NewAttacker(bn.Net, bn.Master.NetKey(),
		soap.Config{RoundInterval: *interval, SolvePoW: *solve})
	attacker.Start(captured.Onion())

	for h := 0; h < *hours; h++ {
		for q := 0; q < 4; q++ {
			bn.Run(15 * time.Minute)
			st := attacker.Stats()
			fmt.Printf("t=%3dm discovered=%2d clones=%3d surrounded=%.2f contained=%.2f\n",
				h*60+(q+1)*15, len(attacker.KnownBots()), st.ClonesCreated,
				soap.CloneNeighborFraction(bn, attacker),
				soap.ContainmentFraction(bn, attacker))
		}
	}

	if err := bn.Broadcast("post-ping", nil, 1); err != nil {
		return err
	}
	bn.Run(2 * time.Minute)
	benign := soap.BenignOverlay(bn, attacker)
	fmt.Printf("\npost-campaign broadcast reach: %d/%d bots\n", bn.ExecutedCount("post-ping"), *bots)
	fmt.Printf("benign overlay edges remaining: %d\n", benign.NumEdges())
	fmt.Printf("C&C messages blocked by clones: %d\n", attacker.Stats().MessagesBlocked)
	if soap.ContainmentFraction(bn, attacker) >= 0.9 {
		fmt.Println("botnet neutralized.")
	} else {
		fmt.Println("botnet NOT fully neutralized (hardened bots or short campaign).")
	}
	return nil
}
