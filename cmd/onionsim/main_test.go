package main

import (
	"strings"
	"testing"

	"onionbots/internal/experiment"
)

// runIDs resolves -exp the way main does and runs the tasks serially.
func runIDs(t *testing.T, exp string, quick bool, seed uint64) []experiment.TaskResult {
	t.Helper()
	tasks, err := buildTasks(exp, quick, seed, "", "", "")
	if err != nil {
		t.Fatalf("%s: %v", exp, err)
	}
	trs, err := (&experiment.Runner{Parallel: 1}).Run(tasks)
	if err != nil {
		t.Fatalf("%s: %v", exp, err)
	}
	return trs
}

func TestBuildTasksKnownExperiments(t *testing.T) {
	// Each id must resolve to at least one result in quick mode; use
	// only the fast ones here (campaign experiments are covered by the
	// experiment package's own tests).
	for _, exp := range []string{"fig3", "fig6", "table1", "probing", "hsdir", "ablation"} {
		for _, tr := range runIDs(t, exp, true, 1) {
			if tr.Err != nil {
				t.Fatalf("%s: %v", exp, tr.Err)
			}
			if len(tr.Results) == 0 {
				t.Fatalf("%s produced no results", exp)
			}
			for _, r := range tr.Results {
				if r.Render() == "" || !strings.Contains(r.Render(), "==") {
					t.Fatalf("%s: empty render", exp)
				}
			}
		}
	}
}

func TestBuildTasksAllCoversRegistry(t *testing.T) {
	tasks, err := buildTasks("all", true, 1, "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != len(experiment.IDs()) {
		t.Fatalf("all expanded to %d tasks, registry has %d", len(tasks), len(experiment.IDs()))
	}
}

func TestBuildTasksCommaList(t *testing.T) {
	tasks, err := buildTasks("fig3,table1", true, 1, "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 || tasks[0].Experiment != "fig3" || tasks[1].Experiment != "table1" {
		t.Fatalf("unexpected tasks: %+v", tasks)
	}
}

func TestCollectFig4ProducesFourPanels(t *testing.T) {
	trs := runIDs(t, "fig4", true, 1)
	if len(trs) != 1 {
		t.Fatalf("fig4 expanded to %d tasks, want 1", len(trs))
	}
	if trs[0].Err != nil {
		t.Fatal(trs[0].Err)
	}
	if len(trs[0].Results) != 4 {
		t.Fatalf("fig4 produced %d results, want 4 (4a-4d)", len(trs[0].Results))
	}
}

func TestBuildTasksRejectsUnknown(t *testing.T) {
	if _, err := buildTasks("fig99", true, 1, "", "", ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := buildTasks("fig3,fig99", true, 1, "", "", ""); err == nil {
		t.Fatal("unknown experiment accepted in a list")
	}
}

func TestBuildTasksInlineChurnSpec(t *testing.T) {
	tasks, err := buildTasks("churn-repair", true, 1, `{"process":"poisson","leave":8}`, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].Params.Churn == nil || tasks[0].Params.Churn.Leave != 8 {
		t.Fatalf("-churn not threaded into params: %+v", tasks[0].Params)
	}
	if _, err := buildTasks("churn-repair", true, 1, `{"process":"bogus"}`, "", ""); err == nil ||
		!strings.Contains(err.Error(), "unknown process") {
		t.Fatalf("bad -churn spec accepted: %v", err)
	}
	if _, err := buildTasks("churn-repair", true, 1, `not json`, "", ""); err == nil {
		t.Fatal("malformed -churn accepted")
	}
}

func TestBuildTasksInlineFaultsSpec(t *testing.T) {
	tasks, err := buildTasks("hsdir-outage", true, 1, "", `{"outage_frac":0.3,"outage_at_h":2,"retry_attempts":4,"retry_backoff_s":1800}`, "")
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].Params.Faults == nil || tasks[0].Params.Faults.OutageFrac != 0.3 {
		t.Fatalf("-faults not threaded into params: %+v", tasks[0].Params)
	}
	if _, err := buildTasks("hsdir-outage", true, 1, "", `{"outage_frac":2}`, ""); err == nil {
		t.Fatal("bad -faults spec accepted")
	}
	if _, err := buildTasks("hsdir-outage", true, 1, "", `not json`, ""); err == nil {
		t.Fatal("malformed -faults accepted")
	}
}

func TestBuildTasksStoreBackend(t *testing.T) {
	tasks, err := buildTasks("churn-hotlist", true, 1, "", "", "mmap")
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].Params.Store != "mmap" {
		t.Fatalf("-store not threaded into params: %+v", tasks[0].Params)
	}
	if _, err := buildTasks("churn-hotlist", true, 1, "", "", "ramdisk"); err == nil {
		t.Fatal("bad -store backend accepted")
	}
}
