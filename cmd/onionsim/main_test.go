package main

import (
	"strings"
	"testing"
)

func TestCollectKnownExperiments(t *testing.T) {
	// Each id must resolve to at least one result in quick mode; use
	// only the fast ones here (campaign experiments are covered by the
	// experiment package's own tests).
	for _, exp := range []string{"fig3", "fig6", "table1", "probing", "hsdir", "ablation"} {
		results, err := collect(exp, true, 1)
		if err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if len(results) == 0 {
			t.Fatalf("%s produced no results", exp)
		}
		for _, r := range results {
			if r.Render() == "" || !strings.Contains(r.Render(), "==") {
				t.Fatalf("%s: empty render", exp)
			}
		}
	}
}

func TestCollectFig4ProducesFourPanels(t *testing.T) {
	results, err := collect("fig4", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("fig4 produced %d results, want 4 (4a-4d)", len(results))
	}
}

func TestCollectRejectsUnknown(t *testing.T) {
	if _, err := collect("fig99", true, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
