// Command onionsim regenerates the OnionBots paper's tables and figures
// from this repository's implementations, and sweeps them over
// parameter grids.
//
// Usage:
//
//	onionsim -list
//	onionsim -exp fig4 [-quick] [-seed 1] [-parallel 8] [-csv dir] [-json]
//	onionsim -exp all -quick
//	onionsim -exp churn-repair -quick -churn '{"process":"poisson","leave":16}'
//	onionsim -exp hsdir-outage -quick -faults '{"outage_frac":0.3,"outage_at_h":2,"outage_targeted":true,"retry_attempts":4,"retry_backoff_s":1800}'
//	onionsim -sweep examples/sweep/fig6-grid.json -parallel 8 -json
//	onionsim -sweep examples/sweep/hsdir-outage-grid.json -parallel 8
//	onionsim -sweep examples/sweep/fig5-fig6-quick.json -cpuprofile cpu.pprof -memprofile mem.pprof
//	onionsim -scenario all -quick
//	onionsim -scenario churn-repair-lambda -quick -json
//	onionsim -serve :8080 -jobs-dir /var/lib/onionsim/jobs
//
// -exp takes a registered experiment ID, a comma-separated list, or
// "all"; -list prints the registry (experiments and scenarios); -churn
// hands every -exp task an inline churn spec (see internal/churn and
// docs/EXPERIMENTS.md), and -faults does the same with an
// infrastructure fault-plane spec (see internal/faults). -scenario runs
// named questions from the internal/scenario library — each a sweep
// plus a machine-checked expectation block — and exits non-zero if any
// expectation fails, which is what `make scenario-smoke` gates CI on.
// -serve runs the sweep engine as a long-lived HTTP service instead of
// a one-shot batch: sweep specs are submitted as jobs, every completed
// grid point is checkpointed to an fsync'd journal under -jobs-dir, and
// a killed or drained server resumes unfinished jobs on restart with
// byte-identical output (see internal/serve and docs/ARCHITECTURE.md).
// Experiments fan out across a
// worker pool (-parallel, default one worker per CPU); output is
// byte-identical at any parallelism because every task runs on its own
// RNG substream derived from (seed, task label). The one exception:
// full-mode (non-quick) probing measures this machine's live
// key-generation rate, so its rate-derived cells vary run to run and
// say so. Progress goes to stderr, results to stdout (ASCII tables, or
// one JSON document with -json); -csv additionally writes each result
// to a file. Full runs use the paper's parameters (n=5000/15000
// graphs, 1000-15000 sweeps) and can take minutes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"onionbots/internal/churn"
	"onionbots/internal/experiment"
	"onionbots/internal/faults"
	"onionbots/internal/scenario"
	"onionbots/internal/serve"
	"onionbots/internal/tor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "onionsim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "all", `experiment id, comma-separated list, or "all" (see -list)`)
		quick     = flag.Bool("quick", false, "use scaled-down parameters")
		csvDir    = flag.String("csv", "", "also write each result as CSV into this directory")
		seed      = flag.Uint64("seed", 1, "root seed; every task derives its own substream from it")
		churnStr  = flag.String("churn", "", `inline churn spec applied to -exp tasks, e.g. '{"process":"poisson","leave":8}'`)
		faultsStr = flag.String("faults", "", `inline fault-plane spec applied to -exp tasks, e.g. '{"outage_frac":0.3,"outage_at_h":2,"retry_attempts":4,"retry_backoff_s":1800}'`)
		storeStr  = flag.String("store", "", `descriptor-store backend for -exp tasks: "flat", "sharded", or "mmap" ("" = default); outputs are byte-identical across backends`)
		taskTO    = flag.Duration("task-timeout", 0, "per-task wall-clock timeout (0 = off; a timed-out task is reported as failed)")
		parallel  = flag.Int("parallel", runtime.NumCPU(), "worker count (output is identical at any value; see package doc for the full-mode probing exception)")
		sweep     = flag.String("sweep", "", "run a JSON scenario-sweep spec instead of -exp")
		serveAddr = flag.String("serve", "", `run as a long-lived sweep server on this address (e.g. ":8080") instead of -exp; jobs persist under -jobs-dir and resume across restarts`)
		jobsDir   = flag.String("jobs-dir", "jobs", "server mode: persistence root for job specs, checkpoint journals, and results")
		retries   = flag.Int("task-retries", 2, "server mode: per-task retries for panicked or timed-out grid points")
		scen      = flag.String("scenario", "", `run named library scenarios instead of -exp: a name, a comma-separated list, or "all"; exits non-zero if any expectation fails`)
		jsonOut   = flag.Bool("json", false, "emit one machine-readable JSON document on stdout")
		list      = flag.Bool("list", false, "list registered experiments and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "onionsim: memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	if *list {
		for _, id := range experiment.IDs() {
			def, _ := experiment.Lookup(id)
			fmt.Printf("%-10s %s\n", id, def.Title)
		}
		fmt.Println()
		for _, name := range scenario.Names() {
			sc, _ := scenario.Lookup(name)
			fmt.Printf("scenario:%-25s %s\n", name, sc.Question)
		}
		return nil
	}

	if *serveAddr != "" {
		// Server mode owns job intake: specs arrive over HTTP, so every
		// batch-shaping flag is a mistake worth rejecting loudly.
		var conflict []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "exp", "quick", "seed", "churn", "faults", "sweep", "scenario", "json", "csv":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("-serve takes sweep specs over HTTP (POST /jobs); drop %s", strings.Join(conflict, ", "))
		}
		return runServe(*serveAddr, *jobsDir, *parallel, *taskTO, *retries)
	}
	var serveOnly []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "jobs-dir", "task-retries":
			serveOnly = append(serveOnly, "-"+f.Name)
		}
	})
	if len(serveOnly) > 0 {
		return fmt.Errorf("%s only apply to -serve", strings.Join(serveOnly, ", "))
	}

	runner := &experiment.Runner{
		Parallel:    *parallel,
		TaskTimeout: *taskTO,
		Progress: func(done, total int, tr experiment.TaskResult) {
			status := "ok"
			if tr.Err != nil {
				status = "FAILED: " + tr.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s %s (%s)\n",
				done, total, tr.Task.Label, status, tr.Elapsed.Round(time.Millisecond))
		},
	}

	if *sweep != "" && *scen != "" {
		return fmt.Errorf("-sweep and -scenario are mutually exclusive")
	}
	if *sweep != "" {
		// A sweep spec carries its own experiments, presets, and seed
		// grid; reject flag combinations that would otherwise be
		// silently ignored.
		var conflict []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "exp", "quick", "seed", "churn", "faults":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("-sweep takes experiments, quick, seeds, churn, and faults from the spec file; drop %s",
				strings.Join(conflict, ", "))
		}
		return runSweep(runner, *sweep, *jsonOut, *csvDir)
	}
	if *scen != "" {
		// Scenarios carry their own sweeps and seeds; only -quick,
		// -parallel, -task-timeout, -json, and -csv compose with them.
		var conflict []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "exp", "seed", "churn", "faults":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("-scenario takes experiments, seeds, churn, and faults from the library; drop %s",
				strings.Join(conflict, ", "))
		}
		return runScenarios(runner, *scen, *quick, *jsonOut, *csvDir)
	}

	tasks, err := buildTasks(*exp, *quick, *seed, *churnStr, *faultsStr, *storeStr)
	if err != nil {
		return err
	}
	taskResults, err := runner.Run(tasks)
	printRunSummary(runner)
	if err != nil {
		return err
	}
	var results []*experiment.Result
	for _, tr := range taskResults {
		if tr.Err != nil {
			return fmt.Errorf("%s: %w", tr.Task.Label, tr.Err)
		}
		results = append(results, tr.Results...)
	}
	for _, r := range results {
		if err := writeCSV(*csvDir, r.ID, r); err != nil {
			return err
		}
	}
	if *jsonOut {
		doc, err := experiment.ResultsJSON(results)
		if err != nil {
			return err
		}
		fmt.Println(string(doc))
		return nil
	}
	for _, r := range results {
		fmt.Println(r.Render())
	}
	return nil
}

// buildTasks resolves -exp into one task per selected experiment. The
// task label is the experiment ID, so `-exp fig6 -seed 1` and
// `-exp all -seed 1` run fig6 on the same substream. A non-empty
// churnStr is parsed as an inline churn.Spec and handed to every task
// (experiments without a churn phase ignore it); faultsStr does the
// same with an inline faults.Spec for the fault-plane experiments, and
// store selects the descriptor-store backend for protocol-level tasks.
func buildTasks(exp string, quick bool, seed uint64, churnStr, faultsStr, store string) ([]experiment.Task, error) {
	ids := experiment.IDs()
	if exp != "all" {
		ids = strings.Split(exp, ",")
		for _, id := range ids {
			if _, ok := experiment.Lookup(id); !ok {
				return nil, fmt.Errorf("unknown experiment %q", id)
			}
		}
	}
	var cspec *churn.Spec
	if churnStr != "" {
		spec, err := churn.ParseSpec([]byte(churnStr))
		if err != nil {
			return nil, fmt.Errorf("-churn: %w", err)
		}
		cspec = &spec
	}
	var fspec *faults.Spec
	if faultsStr != "" {
		spec, err := faults.ParseSpec([]byte(faultsStr))
		if err != nil {
			return nil, fmt.Errorf("-faults: %w", err)
		}
		fspec = &spec
	}
	if _, err := tor.NewDescriptorStoreByName(store); err != nil {
		return nil, fmt.Errorf("-store: %w", err)
	}
	tasks := make([]experiment.Task, 0, len(ids))
	for _, id := range ids {
		tasks = append(tasks, experiment.Task{
			Label:      id,
			Experiment: id,
			Params:     experiment.Params{Quick: quick, Seed: seed, Churn: cspec, Faults: fspec, Store: store},
		})
	}
	return tasks, nil
}

func runSweep(runner *experiment.Runner, path string, jsonOut bool, csvDir string) error {
	spec, err := experiment.LoadSweep(path)
	if err != nil {
		return err
	}
	tasks, err := spec.Tasks()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep %s: %d tasks\n", spec.Name, len(tasks))
	taskResults, err := runner.Run(tasks)
	printRunSummary(runner)
	if err != nil {
		return err
	}
	aggregate := spec.Aggregate(taskResults)
	if jsonOut {
		doc, err := experiment.SweepJSON(spec, taskResults, aggregate)
		if err != nil {
			return err
		}
		fmt.Println(string(doc))
	} else {
		fmt.Println(aggregate.Render())
	}
	if csvDir != "" {
		if err := writeCSV(csvDir, aggregate.ID, aggregate); err != nil {
			return err
		}
		for _, tr := range taskResults {
			for _, r := range tr.Results {
				name := strings.NewReplacer("/", "_", "=", "-").Replace(tr.Task.Label) + "-" + r.ID
				if err := writeCSV(csvDir, name, r); err != nil {
					return err
				}
			}
		}
	}
	for _, tr := range taskResults {
		if tr.Err != nil {
			return fmt.Errorf("%d of %d sweep tasks failed (first: %s: %v)",
				countFailed(taskResults), len(taskResults), tr.Task.Label, tr.Err)
		}
	}
	return nil
}

// runScenarios resolves a -scenario selector and runs each named
// scenario: the sweep runs on the shared worker pool, the aggregate and
// the evaluated expectation table go to stdout, and any FAIL/ERROR
// outcome turns into a non-zero exit after all scenarios have reported
// — CI sees every broken shape, not just the first.
func runScenarios(runner *experiment.Runner, selector string, quick, jsonOut bool, csvDir string) error {
	names := scenario.Names()
	if selector != "all" {
		names = strings.Split(selector, ",")
	}
	var results []*experiment.Result
	var failed []string
	for _, name := range names {
		sc, ok := scenario.Lookup(name)
		if !ok {
			return fmt.Errorf("unknown scenario %q (have %s)", name, strings.Join(scenario.Names(), ", "))
		}
		fmt.Fprintf(os.Stderr, "scenario %s: %s\n", sc.Name, sc.Question)
		rep, err := scenario.Run(sc, quick, runner)
		if err != nil {
			return err
		}
		if !rep.Passed() {
			failed = append(failed, sc.Name)
		}
		results = append(results, rep.Aggregate, rep.Result())
	}
	if jsonOut {
		doc, err := experiment.ResultsJSON(results)
		if err != nil {
			return err
		}
		fmt.Println(string(doc))
	} else {
		for _, r := range results {
			fmt.Println(r.Render())
		}
	}
	for _, r := range results {
		if err := writeCSV(csvDir, r.ID, r); err != nil {
			return err
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d scenario(s) failed expectations: %s", len(failed), strings.Join(failed, ", "))
	}
	printRunSummary(runner)
	return nil
}

// runServe hands the process to the simulation service: SIGTERM/SIGINT
// cancel the context, Run drains in-flight tasks into the checkpoint
// journals, and the nil return exits 0 so supervisors read the drain as
// a clean stop. Unfinished jobs resume on the next start.
func runServe(addr, jobsDir string, parallel int, taskTimeout time.Duration, taskRetries int) error {
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		return fmt.Errorf("jobs dir: %w", err)
	}
	s, err := serve.New(serve.Config{
		Addr:        addr,
		JobsDir:     jobsDir,
		Parallel:    parallel,
		TaskTimeout: taskTimeout,
		TaskRetries: taskRetries,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	return s.Run(ctx)
}

// printRunSummary surfaces the runner's retry/abandonment accounting on
// stderr whenever any task needed more than one attempt — flaky or
// timed-out grid points stay visible in batch mode, not just in the
// server's /metrics.
func printRunSummary(runner *experiment.Runner) {
	c := runner.Counts()
	if c.Retried == 0 && c.Abandoned == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "run summary: %d attempts across %d tasks (%d retried, %d abandoned by timeout, %d failed)\n",
		c.Attempts, c.Completed, c.Retried, c.Abandoned, c.Failed)
}

func countFailed(trs []experiment.TaskResult) int {
	n := 0
	for _, tr := range trs {
		if tr.Err != nil {
			n++
		}
	}
	return n
}

// writeCSV writes one result to dir/name.csv; an empty dir disables
// it. The notice goes to stderr so stdout stays pure result data
// (ASCII tables or the single -json document).
func writeCSV(dir, name string, r *experiment.Result) error {
	if dir == "" {
		return nil
	}
	path := filepath.Join(dir, name+".csv")
	if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
