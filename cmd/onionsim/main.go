// Command onionsim regenerates the OnionBots paper's tables and figures
// from this repository's implementations.
//
// Usage:
//
//	onionsim -exp fig4 [-quick] [-csv dir]
//	onionsim -exp all -quick
//
// Experiments: fig3, fig4, fig5, fig6, fig7, fig8, table1, probing,
// hsdir, pow, all. Full (non-quick) runs use the paper's parameters
// (n=5000/15000 graphs, 1000-15000 sweeps) and can take minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"onionbots/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "onionsim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp    = flag.String("exp", "all", "experiment id (fig3|fig4|fig5|fig6|fig7|fig8|table1|probing|hsdir|pow|ablation|all)")
		quick  = flag.Bool("quick", false, "use scaled-down parameters")
		csvDir = flag.String("csv", "", "also write each result as CSV into this directory")
		seed   = flag.Uint64("seed", 1, "seed for seeded experiments")
	)
	flag.Parse()

	results, err := collect(*exp, *quick, *seed)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Println(r.Render())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, r.ID+".csv")
			if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", path, err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	return nil
}

func collect(exp string, quick bool, seed uint64) ([]*experiment.Result, error) {
	var out []*experiment.Result
	add := func(rs ...*experiment.Result) {
		out = append(out, rs...)
	}
	want := func(id string) bool { return exp == "all" || exp == id }

	if want("fig3") {
		r, _, err := experiment.RunFig3()
		if err != nil {
			return nil, err
		}
		add(r)
	}
	if want("fig4") {
		for _, pruning := range []bool{false, true} {
			cfg := experiment.DefaultFig4Config(quick)
			cfg.Pruning = pruning
			cfg.Seed = seed
			closeness, degree, err := experiment.RunFig4(cfg)
			if err != nil {
				return nil, err
			}
			add(closeness, degree)
		}
	}
	if want("fig5") {
		sizes := []int{5000, 15000}
		if quick {
			sizes = []int{0} // quick preset ignores the size argument
		}
		for _, n := range sizes {
			cfg := experiment.DefaultFig5Config(quick, n)
			cfg.Seed = seed
			comps, degree, diam, err := experiment.RunFig5(cfg)
			if err != nil {
				return nil, err
			}
			add(comps, degree, diam)
		}
	}
	if want("fig6") {
		cfg := experiment.DefaultFig6Config(quick)
		cfg.Seed = seed
		r, err := experiment.RunFig6(cfg)
		if err != nil {
			return nil, err
		}
		add(r)
	}
	if want("table1") {
		r, err := experiment.RunTable1([]byte("onionsim"))
		if err != nil {
			return nil, err
		}
		if err := experiment.VerifyTable1Shape(r); err != nil {
			return nil, err
		}
		add(r)
	}
	if want("fig7") {
		cfg := experiment.DefaultFig7Config(quick)
		cfg.Seed = seed
		r, err := experiment.RunFig7(cfg)
		if err != nil {
			return nil, err
		}
		add(r)
	}
	if want("fig8") {
		cfg := experiment.DefaultFig8Config(quick)
		cfg.Seed = seed
		r, err := experiment.RunFig8(cfg)
		if err != nil {
			return nil, err
		}
		add(r)
	}
	if want("probing") {
		r, err := experiment.RunProbingFeasibility()
		if err != nil {
			return nil, err
		}
		add(r)
	}
	if want("hsdir") {
		r, err := experiment.RunHSDirAttack(seed)
		if err != nil {
			return nil, err
		}
		add(r)
	}
	if want("pow") {
		r, err := experiment.RunPoWDefense(seed, quick)
		if err != nil {
			return nil, err
		}
		add(r)
	}
	if want("ablation") {
		cfg := experiment.DefaultAblationConfig(quick)
		cfg.Seed = seed
		r, err := experiment.RunDDSRAblation(cfg)
		if err != nil {
			return nil, err
		}
		add(r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("unknown experiment %q", exp)
	}
	return out, nil
}
