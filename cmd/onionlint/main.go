// Command onionlint runs the determinism-contract analyzers
// (internal/lint) over the tree and exits non-zero on any finding.
//
// Usage:
//
//	onionlint [-list] [packages]
//
// With no package patterns it checks ./... from the current directory,
// which must be inside the module. Diagnostics print one per line as
// file:line:col: analyzer: message — the same shape as go vet — and the
// exit status is 1 if anything was reported. See docs/ARCHITECTURE.md
// ("Mechanically enforced") for the analyzer catalogue and the
// //onionlint:allow escape-hatch grammar.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"onionbots/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer catalogue and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: onionlint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Static enforcement of the determinism contract. Analyzers:\n\n")
		printAnalyzers(flag.CommandLine.Output())
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		printAnalyzers(os.Stdout)
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "onionlint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "onionlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "onionlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func printAnalyzers(w io.Writer) {
	for _, a := range lint.Suite() {
		fmt.Fprintf(w, "  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(w, "\nSuppress a finding with `%s <analyzer> -- <reason>` on the\noffending line or the line above; docs/LINT_ALLOWLIST.txt must list every\ndirective (enforced by internal/lint tests).\n\n", lint.DirectivePrefix)
}
