// Pinned versions for the external lint toolchain. A separate module so
// the simulator's go.mod keeps zero dependencies; `make tools` installs
// exactly these versions (standalone `go install pkg@version`, so no
// go.sum is required here). Bump versions in this file only — the
// Makefile reads them from it.
module onionbots/tools

go 1.24

require (
	golang.org/x/vuln v1.1.4
	honnef.co/go/tools v0.6.1
)
