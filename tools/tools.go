//go:build tools

// Package tools anchors the lint toolchain imports so `go mod tidy`
// keeps the pinned requirements in go.mod. It is never compiled (the
// tools build tag is never set).
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"
	_ "honnef.co/go/tools/cmd/staticcheck"
)
