module onionbots

go 1.24

// Table 1 reproduces the weak crypto of historical botnets (RSA-512 in
// Dirt Jumper-era kits); Go 1.24 refuses such keys unless waived.
godebug rsa1024min=0
